"""Process-local telemetry registry: counters, gauges and timed spans.

The instrumentation substrate of :mod:`repro.obs`. A single module-level
:data:`telemetry` registry is shared by every producer in the pipeline
(driver, schedulers, partitioner, MILP backends, caches). It is **disabled
by default** and designed so that the disabled path costs one attribute
check per call site:

* :meth:`Telemetry.count` / :meth:`Telemetry.gauge` return immediately when
  disabled;
* :meth:`Telemetry.span` returns a single shared no-op context manager when
  disabled (no allocation, no clock read);
* producers that must do extra work to *compute* a value (e.g. a cut weight)
  guard it with ``if telemetry.enabled:`` themselves.

Spans are hierarchical: entering a span pushes its name onto a stack, and
the completed span is aggregated under the ``/``-joined path of the stack
(``driver/execute/commit``). Only monotonic clocks (``time.perf_counter``)
are read — wall-clock time never enters the registry, so the simulator
modules that use it stay RPR003-clean (see :mod:`repro.analysis.lint`).
"""

from __future__ import annotations

import functools
import math
import time
from collections.abc import Callable
from dataclasses import dataclass
from types import TracebackType
from typing import Any, TypeVar

__all__ = ["SpanStats", "Telemetry", "telemetry"]

_F = TypeVar("_F", bound=Callable[..., Any])


@dataclass
class SpanStats:
    """Aggregate timing of every completed span sharing one path."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0

    def add(self, duration_s: float) -> None:
        self.count += 1
        self.total_s += duration_s
        if duration_s < self.min_s:
            self.min_s = duration_s
        if duration_s > self.max_s:
            self.max_s = duration_s

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def merge(self, other: SpanStats) -> None:
        self.count += other.count
        self.total_s += other.total_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)

    def to_dict(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class _NullSpan:
    """Shared no-op context manager returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: times the enclosed block and aggregates on exit."""

    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: Telemetry, name: str) -> None:
        self._registry = registry
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> _Span:
        self._registry._stack.append(self._name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        end = time.perf_counter()
        self._registry._finish(end - self._t0, self._t0)
        return False


class Telemetry:
    """Registry of counters, gauges and hierarchical timed spans.

    One instance, :data:`telemetry`, is shared process-wide; library code
    should use it rather than constructing private registries, so that one
    ``telemetry.enable()`` turns the whole pipeline's instrumentation on.

    Parameters
    ----------
    enabled:
        Start collecting immediately. Default ``False``: every hook in the
        pipeline stays a near-free no-op.
    keep_events:
        Additionally retain each individual span occurrence as
        ``(path, start_s, duration_s)`` with starts relative to the moment
        the registry was enabled — needed to export spans onto a timeline
        (Chrome trace) rather than as aggregates only.
    """

    def __init__(self, enabled: bool = False, keep_events: bool = False) -> None:
        self.enabled = enabled
        self.keep_events = keep_events
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.spans: dict[str, SpanStats] = {}
        self.events: list[tuple[str, float, float]] = []
        self._stack: list[str] = []
        self._epoch = time.perf_counter()

    # -- lifecycle -------------------------------------------------------------
    def enable(self, keep_events: bool | None = None) -> None:
        """Start collecting (optionally retaining individual span events)."""
        self.enabled = True
        if keep_events is not None:
            self.keep_events = keep_events
        self._epoch = time.perf_counter()

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all collected data (the enabled flag is left untouched)."""
        self.counters.clear()
        self.gauges.clear()
        self.spans.clear()
        self.events.clear()
        self._stack.clear()
        self._epoch = time.perf_counter()

    # -- scalar instruments ----------------------------------------------------
    def count(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the named monotonically increasing counter."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its most recent value."""
        if not self.enabled:
            return
        self.gauges[name] = value

    # -- spans ------------------------------------------------------------------
    def span(self, name: str) -> _Span | _NullSpan:
        """Context manager timing a block under ``name``.

        Nested spans aggregate under their ``/``-joined stack path, e.g.
        ``with telemetry.span("a"): with telemetry.span("b"): ...`` records
        the inner block under ``"a/b"``.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def timed(self, name: str | None = None) -> Callable[[_F], _F]:
        """Decorator form of :meth:`span` (span named after the function)."""

        def deco(fn: _F) -> _F:
            label = name if name is not None else fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                if not self.enabled:
                    return fn(*args, **kwargs)
                with self.span(label):
                    return fn(*args, **kwargs)

            return wrapper  # type: ignore[return-value]

        return deco

    def _finish(self, duration_s: float, t0: float) -> None:
        path = "/".join(self._stack)
        self._stack.pop()
        stats = self.spans.get(path)
        if stats is None:
            stats = self.spans[path] = SpanStats()
        stats.add(duration_s)
        if self.keep_events:
            self.events.append((path, t0 - self._epoch, duration_s))

    # -- export -----------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of everything collected so far."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "spans": {path: s.to_dict() for path, s in sorted(self.spans.items())},
        }

    def top_spans(self, n: int = 10) -> list[tuple[str, SpanStats]]:
        """The ``n`` span paths with the largest total time, descending."""
        ranked = sorted(
            self.spans.items(), key=lambda kv: kv[1].total_s, reverse=True
        )
        return ranked[:n]


#: The process-wide registry every producer reports into. Disabled by
#: default, so all instrumentation hooks are no-ops until a caller (the
#: ``repro profile`` / ``repro metrics`` commands, a test, or
#: ``ExperimentConfig(telemetry=True)``) enables it.
telemetry = Telemetry(enabled=False)
