"""Unified observability: telemetry spans, decision logs, derived metrics.

The measurement substrate of the reproduction, in three parts:

* :mod:`repro.obs.core` — a process-local :class:`Telemetry` registry of
  counters, gauges and hierarchical timed spans, disabled by default and
  near-free when disabled. Every producer in the pipeline (driver,
  schedulers, hypergraph partitioner, MILP backends, result cache) reports
  into the shared :data:`telemetry` singleton.
* :mod:`repro.obs.decisions` — one structured record per scheduler task
  placement, replayable against executed
  :class:`~repro.cluster.stats.TaskRecord`\\ s to quantify estimation error.
* :mod:`repro.obs.metrics` / :mod:`repro.obs.export` — paper-facing metrics
  derived from an executed runtime (utilization, port contention, transfer
  and cache accounting; Eqs. 9–13) and the single-JSON *run manifest*
  (+ NDJSON and merged Chrome trace exports) that carries everything.

This package sits directly above :mod:`repro.cluster` and below
:mod:`repro.core`: it may import the simulator's data types but never the
schedulers, so instrumented producers can import it without cycles.
"""

from .core import SpanStats, Telemetry, telemetry
from .decisions import Decision, DecisionLog, DecisionReplay, ReplayedDecision
from .diff import ManifestDiff, diff_manifests, format_diff, load_run
from .export import (
    MANIFEST_KIND,
    MANIFEST_VERSION,
    build_manifest,
    build_stream_manifest,
    load_schema,
    manifest_to_ndjson,
    merge_snapshots,
    merged_chrome_trace,
    validate_manifest,
    write_manifest,
    write_ndjson,
)
from .metrics import RunMetrics, compute_metrics, conservation_residual_mb
from .report import load_trajectory, render_report, write_report
from .schema import SchemaError, check, validate
from .timeseries import (
    ProbeConfig,
    TimeSeriesProbe,
    merge_timeseries,
    resolve_timeseries,
    stitch_timeseries,
)

__all__ = [
    "MANIFEST_KIND",
    "MANIFEST_VERSION",
    "Decision",
    "DecisionLog",
    "DecisionReplay",
    "ManifestDiff",
    "ProbeConfig",
    "ReplayedDecision",
    "RunMetrics",
    "SchemaError",
    "SpanStats",
    "Telemetry",
    "TimeSeriesProbe",
    "build_manifest",
    "build_stream_manifest",
    "check",
    "compute_metrics",
    "conservation_residual_mb",
    "diff_manifests",
    "format_diff",
    "load_run",
    "load_schema",
    "load_trajectory",
    "manifest_to_ndjson",
    "merge_snapshots",
    "merge_timeseries",
    "merged_chrome_trace",
    "render_report",
    "resolve_timeseries",
    "stitch_timeseries",
    "telemetry",
    "validate",
    "validate_manifest",
    "write_manifest",
    "write_ndjson",
]
