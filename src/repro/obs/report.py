"""Self-contained HTML run report (inline SVG, zero dependencies).

``repro report RUN.json [BASELINE.json]`` renders a run manifest — and
optionally its diff against a second manifest — into **one** HTML file that
opens offline: all styling is an inline ``<style>`` block, every chart is
inline SVG, and there are no ``<script>`` tags, external stylesheets,
fonts or images. The page carries:

* a run summary (scheme, makespan, tasks, digest, versions);
* sparklines for every ``timeseries`` series with fault/sub-batch events
  drawn as vertical markers;
* a per-node activity strip (a compact Gantt substitute) derived from the
  ``port_busy_s/*`` series — segment shade is the port's busy fraction
  over that sample interval;
* the scalar metrics / transfer-stats tables;
* the ranked :mod:`repro.obs.diff` attribution view when a baseline is
  given;
* the bench speedup trajectory (``benchmarks/BENCH_trajectory.jsonl``)
  when available.

Everything here is plain string assembly over already-JSON data, so the
module stays dependency-free and mypy-strict like the rest of
:mod:`repro.obs`.
"""

from __future__ import annotations

import html
import json
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Any

from .diff import ManifestDiff, diff_manifests

__all__ = ["load_trajectory", "render_report", "write_report"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial, sans-serif;
       margin: 2em auto; max-width: 70em; color: #1a1a2e; }
h1 { font-size: 1.4em; border-bottom: 2px solid #16213e; padding-bottom: .3em; }
h2 { font-size: 1.1em; margin-top: 1.6em; color: #16213e; }
table { border-collapse: collapse; margin: .6em 0; font-size: .85em; }
th, td { border: 1px solid #cbd2dc; padding: .25em .6em; text-align: right; }
th { background: #eef1f6; }
td.name, th.name { text-align: left; font-family: ui-monospace, monospace; }
.spark td { border: none; padding: .1em .6em; }
.delta-bad { color: #b00020; font-weight: 600; }
.delta-good { color: #1b7837; font-weight: 600; }
.dominant { background: #fff4e5; border-left: 4px solid #e8871e;
            padding: .5em .8em; font-size: .9em; }
.note { color: #5a6472; font-size: .8em; }
svg { vertical-align: middle; }
"""

_EVENT_COLORS = {
    "crash": "#b00020",
    "retry": "#e8871e",
    "slowdown-start": "#7b2cbf",
    "slowdown-end": "#b296d6",
    "subbatch": "#9aa5b1",
    "batch": "#1b7837",
}


def _fmt(value: Any) -> str:
    """Compact numeric formatting for table cells."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return html.escape(str(value))
    if isinstance(value, int):
        return f"{value:,}"
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:,.3f}"


def _sorted_points(points: Sequence[Sequence[float]]) -> list[tuple[float, float]]:
    # Points are stored in commit order; commit ECTs are not globally
    # monotone across nodes, so sort by time for rendering only.
    return sorted((float(p[0]), float(p[1])) for p in points)


def _sparkline(
    points: Sequence[Sequence[float]],
    events: Sequence[Mapping[str, Any]] = (),
    *,
    width: int = 300,
    height: int = 36,
    t_max: float | None = None,
) -> str:
    """Inline SVG sparkline; events become vertical marker lines."""
    pts = _sorted_points(points)
    if not pts:
        return "<svg width='300' height='36'></svg>"
    t_lo = min(p[0] for p in pts)
    t_hi = t_max if t_max is not None else max(p[0] for p in pts)
    v_lo = min(p[1] for p in pts)
    v_hi = max(p[1] for p in pts)
    t_span = (t_hi - t_lo) or 1.0
    v_span = (v_hi - v_lo) or 1.0
    pad = 3.0

    def x(t: float) -> float:
        return pad + (t - t_lo) / t_span * (width - 2 * pad)

    def y(v: float) -> float:
        return height - pad - (v - v_lo) / v_span * (height - 2 * pad)

    parts = [f"<svg width='{width}' height='{height}' role='img'>"]
    for ev in events:
        t = float(ev.get("t", 0.0))
        if not t_lo <= t <= t_hi:
            continue
        color = _EVENT_COLORS.get(str(ev.get("kind")), "#9aa5b1")
        title = html.escape(f"{ev.get('kind')} @ {t:.3f}s {ev.get('detail') or ''}")
        parts.append(
            f"<line x1='{x(t):.1f}' y1='0' x2='{x(t):.1f}' y2='{height}' "
            f"stroke='{color}' stroke-width='1' stroke-dasharray='2,2'>"
            f"<title>{title}</title></line>"
        )
    poly = " ".join(f"{x(t):.1f},{y(v):.1f}" for t, v in pts)
    parts.append(
        f"<polyline points='{poly}' fill='none' stroke='#16213e' stroke-width='1.3'/>"
    )
    lx, lv = pts[-1]
    parts.append(f"<circle cx='{x(lx):.1f}' cy='{y(lv):.1f}' r='2' fill='#e8871e'/>")
    parts.append("</svg>")
    return "".join(parts)


def _activity_strip(
    points: Sequence[Sequence[float]],
    makespan: float,
    *,
    width: int = 420,
    height: int = 14,
) -> str:
    """Per-node activity strip: shade = busy fraction per sample interval.

    Built from the cumulative ``port_busy_s`` series — the derivative
    between consecutive samples is the fraction of that wall of simulated
    time the node's port (transfers + execution) was occupied.
    """
    pts = _sorted_points(points)
    if len(pts) < 2 or makespan <= 0:
        return f"<svg width='{width}' height='{height}'></svg>"
    parts = [f"<svg width='{width}' height='{height}'>"]
    parts.append(
        f"<rect x='0' y='0' width='{width}' height='{height}' fill='#eef1f6'/>"
    )
    prev_t, prev_v = 0.0, 0.0
    for t, v in pts:
        span = t - prev_t
        if span > 1e-12:
            frac = min(max((v - prev_v) / span, 0.0), 1.0)
            x0 = prev_t / makespan * width
            x1 = t / makespan * width
            if frac > 0.01:
                alpha = 0.15 + 0.85 * frac
                parts.append(
                    f"<rect x='{x0:.1f}' y='0' width='{max(x1 - x0, 0.5):.1f}' "
                    f"height='{height}' fill='#16213e' fill-opacity='{alpha:.2f}'>"
                    f"<title>{frac:.0%} busy, {prev_t:.2f}-{t:.2f}s</title></rect>"
                )
        prev_t, prev_v = t, v
    parts.append("</svg>")
    return "".join(parts)


def _kv_table(data: Mapping[str, Any], caption: str) -> str:
    rows = "".join(
        f"<tr><td class='name'>{html.escape(str(k))}</td><td>{_fmt(v)}</td></tr>"
        for k, v in data.items()
        if not isinstance(v, (dict, list))
    )
    if not rows:
        return ""
    return (
        f"<h2>{html.escape(caption)}</h2><table>"
        f"<tr><th class='name'>name</th><th>value</th></tr>{rows}</table>"
    )


def _timeseries_section(manifest: Mapping[str, Any]) -> str:
    ts = manifest.get("timeseries")
    if ts is None:
        return (
            "<h2>Time series</h2><p class='note'>No timeseries block — run "
            "with probes enabled (<code>--timeseries</code>) to record "
            "simulated-time trajectories.</p>"
        )
    makespan = float((manifest.get("result") or {}).get("makespan_s", 0.0))
    events = ts.get("events", [])
    out = [
        "<h2>Time series (simulated seconds)</h2>",
        f"<p class='note'>{int(ts.get('samples', 0)):,} samples, budget "
        f"{int(ts.get('budget', 0))}/series, {int(ts.get('compactions', 0))} "
        "downsampling compaction(s). Dashed markers: "
        + ", ".join(
            f"<span style='color:{c}'>{k}</span>"
            for k, c in _EVENT_COLORS.items()
        )
        + ".</p>",
        "<table class='spark'>",
    ]
    series = ts.get("series", {})
    for name in sorted(series):
        s = series[name]
        points = s.get("points", [])
        last = points[-1][1] if points else 0.0
        out.append(
            "<tr>"
            f"<td class='name'>{html.escape(name)}</td>"
            f"<td class='name'>{html.escape(str(s.get('unit', '')))}</td>"
            f"<td>{_fmt(last)}</td>"
            f"<td>{_sparkline(points, events, t_max=makespan or None)}</td>"
            "</tr>"
        )
    out.append("</table>")

    strips = [
        (name.split("/", 1)[1], series[name].get("points", []))
        for name in sorted(series)
        if name.startswith("port_busy_s/")
    ]
    if strips and makespan > 0:
        out.append("<h2>Node activity (0 &rarr; makespan)</h2><table class='spark'>")
        for node, points in strips:
            out.append(
                f"<tr><td class='name'>{html.escape(node)}</td>"
                f"<td>{_activity_strip(points, makespan)}</td></tr>"
            )
        out.append("</table>")
    return "".join(out)


def _online_section(manifest: Mapping[str, Any]) -> str:
    """Streaming-session block: queueing metrics, per-batch table, responses."""
    online = manifest.get("online")
    if online is None:
        return ""
    queueing = online.get("queueing") or {}
    header = dict(queueing)
    header["mode"] = online.get("mode")
    header["policy"] = online.get("policy")
    arrival = online.get("arrival")
    if arrival:
        header["arrival"] = " ".join(
            f"{k}={v}" for k, v in sorted(arrival.items())
        )
    out = [_kv_table(header, "Online session (queueing)")]
    batches = online.get("batches", [])
    if batches:
        out.append(
            "<h2>Dispatch windows</h2>"
            "<table><tr><th>#</th><th>dispatch (s)</th><th>jobs</th>"
            "<th>makespan (s)</th><th>sub-batches</th><th>queue</th>"
            "<th>remote MB</th><th>cross-batch MB</th></tr>"
        )
        for b in batches:
            out.append(
                "<tr>"
                f"<td>{_fmt(b.get('index'))}</td>"
                f"<td>{_fmt(b.get('dispatch_s'))}</td>"
                f"<td>{_fmt(b.get('num_jobs'))}</td>"
                f"<td>{_fmt(b.get('makespan_s'))}</td>"
                f"<td>{_fmt(b.get('sub_batches'))}</td>"
                f"<td>{_fmt(b.get('queue_depth'))}</td>"
                f"<td>{_fmt(b.get('remote_volume_mb'))}</td>"
                f"<td>{_fmt(b.get('cross_batch_hit_volume_mb'))}</td>"
                "</tr>"
            )
        out.append("</table>")
    jobs = online.get("jobs", [])
    if jobs:
        responses = [
            [float(j.get("arrival_s", 0.0)), float(j.get("response_s", 0.0))]
            for j in jobs
        ]
        out.append(
            "<h2>Job response times (s, by arrival)</h2>"
            f"<table class='spark'><tr><td class='name'>response_s</td>"
            f"<td>{_fmt(max(r[1] for r in responses))} max</td>"
            f"<td>{_sparkline(responses)}</td></tr></table>"
        )
    return "".join(out)


def _diff_section(diff: ManifestDiff, top: int = 10) -> str:
    cls = "delta-bad" if diff.delta_s > 0 else "delta-good"
    out = [
        "<h2>Diff vs baseline</h2>",
        f"<p>makespan {diff.makespan_a:.3f}s &rarr; {diff.makespan_b:.3f}s "
        f"(<span class='{cls}'>{diff.delta_s:+.3f}s, {diff.rel_delta:+.1%}</span>)</p>",
        f"<p class='dominant'>{html.escape(diff.dominant())}</p>",
    ]
    if diff.rows:
        out.append(
            "<table><tr><th class='name'>phase</th><th class='name'>node</th>"
            "<th>A (s)</th><th>B (s)</th><th>delta (s)</th></tr>"
        )
        for r in diff.rows[:top]:
            out.append(
                f"<tr><td class='name'>{html.escape(r.phase)}</td>"
                f"<td class='name'>{html.escape(r.node)}</td>"
                f"<td>{r.a_s:.3f}</td><td>{r.b_s:.3f}</td>"
                f"<td>{r.delta_s:+.3f}</td></tr>"
            )
        out.append("</table>")
    if diff.metric_rows:
        out.append(
            "<table><tr><th class='name'>metric</th><th>A</th><th>B</th>"
            "<th>rel</th></tr>"
        )
        for m in diff.metric_rows[:top]:
            out.append(
                f"<tr><td class='name'>{html.escape(m.name)}</td>"
                f"<td>{_fmt(m.a)}</td><td>{_fmt(m.b)}</td>"
                f"<td>{html.escape(m.rel_str)}</td></tr>"
            )
        out.append("</table>")
    for note in diff.notes:
        out.append(f"<p class='note'>{html.escape(note)}</p>")
    return "".join(out)


def load_trajectory(path: str | Path) -> list[dict[str, Any]]:
    """Read ``BENCH_trajectory.jsonl`` records (missing file → empty).

    The trajectory is an append-only shared file; unparseable or foreign
    lines are skipped rather than failing the whole report.
    """
    p = Path(path)
    if not p.exists():
        return []
    records: list[dict[str, Any]] = []
    for line in p.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            continue
        if isinstance(rec, dict) and rec.get("kind") == "repro-bench-point":
            records.append(rec)
    return records


def _trajectory_section(records: Sequence[Mapping[str, Any]]) -> str:
    if not records:
        return ""
    by_cell: dict[str, list[Mapping[str, Any]]] = {}
    for rec in records:
        by_cell.setdefault(str(rec.get("cell")), []).append(rec)
    out = [
        "<h2>Bench speedup trajectory</h2>",
        "<p class='note'>Per-cell optimized-vs-reference speedup over "
        "recorded bench runs (benchmarks/BENCH_trajectory.jsonl); every "
        "point is decision-checked.</p>",
        "<table class='spark'><tr><th class='name'>cell</th><th>runs</th>"
        "<th>latest</th><th>sha</th><th></th></tr>",
    ]
    for cell in sorted(by_cell):
        recs = by_cell[cell]
        speedups = [[float(i), float(r.get("speedup", 0.0))] for i, r in enumerate(recs)]
        latest = recs[-1]
        out.append(
            "<tr>"
            f"<td class='name'>{html.escape(cell)}</td>"
            f"<td>{len(recs)}</td>"
            f"<td>{float(latest.get('speedup', 0.0)):.2f}x</td>"
            f"<td class='name'>{html.escape(str(latest.get('sha', '?')))}</td>"
            f"<td>{_sparkline(speedups, width=160, height=24)}</td>"
            "</tr>"
        )
    out.append("</table>")
    return "".join(out)


def render_report(
    manifest: Mapping[str, Any],
    baseline: Mapping[str, Any] | None = None,
    *,
    trajectory: Sequence[Mapping[str, Any]] | None = None,
    title: str | None = None,
) -> str:
    """Render one run manifest (plus optional baseline diff) as HTML."""
    scheme = str(manifest.get("scheme", "?"))
    result = manifest.get("result") or {}
    heading = title or f"repro run report — {scheme}"
    summary: dict[str, Any] = {
        "scheme": scheme,
        "makespan_s": result.get("makespan_s"),
        "scheduling_seconds": result.get("scheduling_seconds"),
        "sub_batches": result.get("sub_batches"),
        "tasks": result.get("tasks"),
        "config_digest": manifest.get("config_digest"),
    }
    for key, value in (manifest.get("versions") or {}).items():
        summary[f"version/{key}"] = value
    parts = [
        "<!doctype html>",
        "<html lang='en'><head><meta charset='utf-8'>",
        f"<title>{html.escape(heading)}</title>",
        f"<style>{_CSS}</style>",
        "</head><body>",
        f"<h1>{html.escape(heading)}</h1>",
        _kv_table(summary, "Run"),
    ]
    if baseline is not None:
        parts.append(_diff_section(diff_manifests(baseline, manifest)))
    parts.append(_online_section(manifest))
    parts.append(_timeseries_section(manifest))
    metrics = manifest.get("metrics")
    if metrics is not None:
        parts.append(_kv_table(metrics, "Derived metrics"))
    stats = manifest.get("stats")
    if stats:
        parts.append(_kv_table(stats, "Transfer statistics"))
    faults = manifest.get("faults")
    if faults is not None:
        parts.append(_kv_table(faults, "Fault accounting"))
    if trajectory:
        parts.append(_trajectory_section(trajectory))
    parts.append("</body></html>")
    return "\n".join(p for p in parts if p)


def write_report(
    manifest: Mapping[str, Any],
    path: str | Path,
    baseline: Mapping[str, Any] | None = None,
    *,
    trajectory: Sequence[Mapping[str, Any]] | None = None,
    title: str | None = None,
) -> Path:
    """Render and write the report; returns the output path."""
    out = Path(path)
    out.write_text(
        render_report(manifest, baseline, trajectory=trajectory, title=title)
    )
    return out
