"""A minimal, dependency-free JSON Schema validator.

The run manifest (:mod:`repro.obs.export`) ships with a checked-in JSON
Schema (``run-manifest.schema.json``) so external consumers can validate
the artifact with any standards-compliant validator. This module implements
the small subset of JSON Schema the manifest schema actually uses — enough
for the CLI and CI to self-validate without adding a ``jsonschema``
dependency to the otherwise numpy/scipy-only environment:

``type`` (including union lists), ``properties``, ``required``,
``additionalProperties`` (boolean or sub-schema), ``items``, ``enum``,
``const``, ``minimum`` and ``maximum``.

:func:`validate` returns a list of human-readable error strings (empty when
the instance conforms), each prefixed with a JSON-pointer-ish path.
"""

from __future__ import annotations

from typing import Any

__all__ = ["SchemaError", "validate", "check"]


class SchemaError(ValueError):
    """Raised by :func:`check` when an instance violates its schema."""


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _type_ok(value: Any, expected: str | list[str]) -> bool:
    names = [expected] if isinstance(expected, str) else list(expected)
    return any(_TYPE_CHECKS.get(n, lambda _v: False)(value) for n in names)


def validate(instance: Any, schema: dict[str, Any], path: str = "$") -> list[str]:
    """Validate ``instance`` against ``schema``; returns error messages."""
    errors: list[str] = []

    expected = schema.get("type")
    if expected is not None and not _type_ok(instance, expected):
        errors.append(
            f"{path}: expected type {expected!r}, got {type(instance).__name__}"
        )
        return errors  # structural checks below assume the right type

    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}, got {instance!r}")
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']!r}")

    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            errors.append(f"{path}: {instance} < minimum {schema['minimum']}")
        if "maximum" in schema and instance > schema["maximum"]:
            errors.append(f"{path}: {instance} > maximum {schema['maximum']}")

    if isinstance(instance, dict):
        props: dict[str, Any] = schema.get("properties", {})
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required property {key!r}")
        extra = schema.get("additionalProperties", True)
        for key, value in instance.items():
            if key in props:
                errors.extend(validate(value, props[key], f"{path}.{key}"))
            elif extra is False:
                errors.append(f"{path}: unexpected property {key!r}")
            elif isinstance(extra, dict):
                errors.extend(validate(value, extra, f"{path}.{key}"))

    if isinstance(instance, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for i, value in enumerate(instance):
                errors.extend(validate(value, items, f"{path}[{i}]"))

    return errors


def check(instance: Any, schema: dict[str, Any]) -> None:
    """Raise :class:`SchemaError` listing every violation, if any."""
    errors = validate(instance, schema)
    if errors:
        raise SchemaError(
            f"{len(errors)} schema violation(s):\n" + "\n".join(errors)
        )
