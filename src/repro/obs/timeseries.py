"""Simulated-time series probes over the executing runtime.

The run manifest (:mod:`repro.obs.export`) collapses a whole batch run into
scalar metrics; this module keeps the *trajectory*: per-node disk occupancy
and eviction pressure, port busy seconds, ready-queue and in-flight-transfer
depth, and the cumulative remote / replicated / cache-hit byte counters —
all sampled in **simulated seconds** at commit points, with fault events
(crashes, retries, slowdown windows) and sub-batch boundaries overlaid as
markers.

Determinism is the design constraint. Samples are taken at task commits and
proactive pushes (both simulated-time events), never from the wall clock,
and the fixed-budget downsampler is *merge-adjacent*: when a series reaches
twice its budget, adjacent point pairs merge keeping the later point
(last-value semantics — every series here is cumulative or a state gauge),
halving the series. No RNG, no wall clock: two runs of the same config
produce byte-identical ``timeseries`` blocks, which is what makes the
golden-fixture and workers=1-vs-2 merge tests in ``tests/obs/`` exact.

Null handling mirrors :func:`repro.faults.resolve_spec`:
:func:`resolve_timeseries` maps every null form (``None``, ``False``, the
empty dict) to ``None``, and the runtime's hooks are guarded by a single
``probe is not None`` attribute test — the disabled path allocates nothing,
preserving the <2% telemetry-off overhead guarantee.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.runtime import Runtime, _Tentative
    from ..cluster.state import ClusterState
    from ..faults import FaultSpec

__all__ = [
    "DEFAULT_BUDGET",
    "TIMESERIES_VERSION",
    "ProbeConfig",
    "TimeSeriesProbe",
    "merge_timeseries",
    "resolve_timeseries",
    "stitch_timeseries",
]

#: Schema version of the manifest ``timeseries`` block.
TIMESERIES_VERSION = 1

#: Default per-series point budget (the downsampler's fixed bound).
DEFAULT_BUDGET = 512


@dataclass(frozen=True)
class ProbeConfig:
    """Validated probe settings.

    ``budget`` bounds every series: a series never holds more than
    ``2 * budget - 1`` points, and compacts back to ``budget`` whenever it
    reaches twice the budget.
    """

    budget: int = DEFAULT_BUDGET

    def __post_init__(self) -> None:
        if self.budget < 2:
            raise ValueError(f"timeseries budget must be >= 2, got {self.budget}")


def resolve_timeseries(
    value: bool | ProbeConfig | Mapping[str, Any] | None,
) -> ProbeConfig | None:
    """Map every null form of the probe toggle to ``None`` (no probe).

    Mirrors :func:`repro.faults.resolve_spec`: ``None``, ``False`` and the
    empty dict all mean "no probes", so :func:`~repro.core.driver.run_batch`
    keeps the shared allocation-free fast path; ``True`` enables the default
    :class:`ProbeConfig`; a non-empty dict or an explicit config enables
    probes with those settings.
    """
    if value is None or value is False:
        return None
    if value is True:
        return ProbeConfig()
    if isinstance(value, ProbeConfig):
        return value
    if isinstance(value, Mapping):
        if not value:
            return None
        return ProbeConfig(**dict(value))
    raise TypeError(
        "timeseries must be bool, dict, ProbeConfig or None, "
        f"got {type(value).__name__}"
    )


class _Series:
    """One named series: a unit label and simulated-time points."""

    __slots__ = ("unit", "points")

    def __init__(self, unit: str) -> None:
        self.unit = unit
        self.points: list[tuple[float, float]] = []


class TimeSeriesProbe:
    """Samples cluster/runtime state at commit points in simulated time.

    The :class:`~repro.cluster.runtime.Runtime` calls the ``on_*`` hooks;
    every hook site is guarded by ``if self.probe is not None`` so a run
    without probes never pays more than one attribute test. Points are kept
    in commit order (commit ECTs are not globally monotone across nodes);
    consumers that need time-sorted points sort on render.
    """

    def __init__(
        self,
        config: ProbeConfig,
        *,
        num_compute: int,
        state: ClusterState,
        fault_spec: FaultSpec | None = None,
    ) -> None:
        self.config = config
        self.state = state
        self.num_compute = num_compute
        self.samples = 0
        self.compactions = 0
        self._series: dict[str, _Series] = {}
        self._events: list[dict[str, Any]] = []
        # Cumulative per-compute-node accounting, folded into samples.
        self._busy_s = [0.0] * num_compute
        self._evicted_mb = [0.0] * num_compute
        # Open transfer intervals (start, end) for the in-flight depth
        # gauge; pruned at sub-batch boundaries.
        self._inflight: list[tuple[float, float]] = []
        if fault_spec is not None:
            for w in fault_spec.link_slowdowns:
                detail = f"x{w.factor:g} ({w.scope})"
                self._events.append(
                    {"t": float(w.start), "kind": "slowdown-start",
                     "node": None, "detail": detail}
                )
                self._events.append(
                    {"t": float(w.end), "kind": "slowdown-end",
                     "node": None, "detail": detail}
                )

    # -- point recording ------------------------------------------------------
    def _point(self, name: str, unit: str, t: float, value: float) -> None:
        s = self._series.get(name)
        if s is None:
            s = self._series[name] = _Series(unit)
        pts = s.points
        pts.append((t, value))
        if len(pts) >= 2 * self.config.budget:
            # Merge-adjacent downsampling: keep the later point of every
            # adjacent pair. Last-value is lossless for the pair's right
            # edge on cumulative/state series, and the rule is pure — no
            # RNG, no wall clock — so traces stay byte-reproducible.
            s.points = pts[1::2]
            self.compactions += 1

    def _inflight_at(self, t: float) -> int:
        return sum(1 for start, end in self._inflight if start <= t < end)

    def _sample(self, runtime: Runtime, node: int, t: float) -> None:
        state = runtime.state
        stats = state.stats
        self._point(
            f"disk_used_mb/compute{node}", "MB", t, state.caches[node].used_mb
        )
        self._point(f"port_busy_s/compute{node}", "s", t, self._busy_s[node])
        self._point(
            f"evicted_mb/compute{node}", "MB", t, self._evicted_mb[node]
        )
        self._point("ready_tasks", "tasks", t, float(runtime._ready_count))
        self._point(
            "inflight_transfers", "transfers", t, float(self._inflight_at(t))
        )
        self._point("remote_mb", "MB", t, stats.remote_volume_mb)
        self._point("replicated_mb", "MB", t, stats.replication_volume_mb)
        self._point("cache_hit_mb", "MB", t, stats.cache_hit_volume_mb)
        self._point("evicted_mb", "MB", t, stats.evicted_volume_mb)
        self.samples += 1

    # -- runtime hooks --------------------------------------------------------
    def on_commit(self, runtime: Runtime, tent: _Tentative) -> None:
        """One sample per committed task, timestamped at the task's ECT."""
        node = tent.node
        busy = self._busy_s
        inflight = self._inflight
        busy[node] += tent.ect - tent.exec_start
        for _f, kind, src, start, duration in tent.transfers:
            busy[node] += duration
            if kind == "replica" and src is not None:
                busy[src] += duration
            inflight.append((start, start + duration))
        for _f, _size, kind, src, start, end, _attempt in tent.failed_attempts:
            busy[node] += end - start
            if kind == "replica" and src is not None:
                busy[src] += end - start
            inflight.append((start, end))
        self._sample(runtime, node, tent.ect)

    def on_push(
        self,
        runtime: Runtime,
        dest: int,
        kind: str,
        source: int | None,
        start: float,
        end: float,
    ) -> None:
        """One sample per committed proactive push (DLL replication)."""
        self._busy_s[dest] += end - start
        if kind == "replica" and source is not None:
            self._busy_s[source] += end - start
        self._inflight.append((start, end))
        self._sample(runtime, dest, end)

    def on_evict(self, node: int, size_mb: float) -> None:
        """Accumulate eviction pressure; surfaced at the next sample."""
        if 0 <= node < self.num_compute:
            self._evicted_mb[node] += size_mb

    def on_crash(self, node: int, t: float, files_lost: int) -> None:
        self._events.append(
            {"t": float(t), "kind": "crash", "node": node,
             "detail": f"{files_lost} file(s) lost"}
        )

    def on_retry(self, node: int, file_id: str, t: float, attempts: int) -> None:
        self._events.append(
            {"t": float(t), "kind": "retry", "node": node,
             "detail": f"{file_id}: {attempts} failed attempt(s)"}
        )

    def on_subbatch(self, index: int, t: float) -> None:
        """Mark a sub-batch boundary; prunes finished transfer intervals."""
        self._events.append(
            {"t": float(t), "kind": "subbatch", "node": None,
             "detail": f"#{index}"}
        )
        # Later samples are timestamped at or after the new sub-batch's
        # start, so intervals that ended before it can never count again.
        self._inflight = [(s, e) for s, e in self._inflight if e > t]

    # -- export ---------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The manifest ``timeseries`` block (see run-manifest.schema.json)."""
        series = {
            name: {"unit": s.unit, "points": [[t, v] for t, v in s.points]}
            for name, s in sorted(self._series.items())
        }
        events = sorted(
            self._events,
            key=lambda e: (
                e["t"],
                e["kind"],
                -1 if e["node"] is None else e["node"],
                e["detail"] or "",
            ),
        )
        return {
            "version": TIMESERIES_VERSION,
            "budget": self.config.budget,
            "samples": self.samples,
            "compactions": self.compactions,
            "series": series,
            "events": events,
        }


def stitch_timeseries(
    blocks: list[tuple[float, Mapping[str, Any]]],
) -> dict[str, Any]:
    """Concatenate per-batch ``timeseries`` blocks onto one stream clock.

    Online sessions (:mod:`repro.online`) run each dispatch window through
    its own runtime, whose clock restarts at zero; ``blocks`` pairs each
    window's block with its dispatch time on the stream clock. Every point
    and event is offset by its window's dispatch, series are concatenated
    in dispatch order, and a ``batch`` boundary marker event is inserted at
    each dispatch — the same mechanism as the ``subbatch`` markers, one
    level up. Samples and compactions sum; the budget is the per-batch
    budget (individual batches were downsampled, the stitched series is
    their concatenation and may exceed it).
    """
    if not blocks:
        raise ValueError("no timeseries blocks to stitch")
    ordered = sorted(blocks, key=lambda b: b[0])
    series: dict[str, dict[str, Any]] = {}
    events: list[dict[str, Any]] = []
    samples = 0
    compactions = 0
    budget = int(ordered[0][1]["budget"])
    for index, (dispatch, block) in enumerate(ordered):
        if int(block["version"]) != TIMESERIES_VERSION:
            raise ValueError(
                f"cannot stitch timeseries version {block['version']}"
            )
        events.append(
            {"t": float(dispatch), "kind": "batch", "node": None,
             "detail": f"#{index}"}
        )
        samples += int(block["samples"])
        compactions += int(block["compactions"])
        for name, s in block["series"].items():
            out = series.get(name)
            if out is None:
                out = series[name] = {"unit": s["unit"], "points": []}
            out["points"].extend(
                [float(t) + dispatch, float(v)] for t, v in s["points"]
            )
        for e in block["events"]:
            events.append({**e, "t": float(e["t"]) + dispatch})
    events.sort(
        key=lambda e: (
            e["t"],
            e["kind"],
            -1 if e["node"] is None else e["node"],
            e["detail"] or "",
        )
    )
    return {
        "version": TIMESERIES_VERSION,
        "budget": budget,
        "samples": samples,
        "compactions": compactions,
        "series": {name: series[name] for name in sorted(series)},
        "events": events,
    }


def merge_timeseries(
    blocks: Mapping[str, Mapping[str, Any]],
) -> dict[str, dict[str, Any]]:
    """Merge per-cell ``timeseries`` blocks keyed by config digest.

    Each cell's block is complete and deterministic on its own (probes run
    inside the cell's simulation), so the cross-worker merge is a
    key-sorted union — byte-identical no matter how cells were distributed
    across workers, mirroring how manifest fragments aggregate in
    :func:`repro.parallel.pool.aggregate_cells`.
    """
    return {digest: dict(blocks[digest]) for digest in sorted(blocks)}
