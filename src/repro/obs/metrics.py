"""Paper-facing metrics derived from an executed runtime's Gantt charts.

Everything the paper uses to *explain* its results (Sections 6–8) but that a
bare makespan cannot show, computed post-hoc from a
:class:`~repro.cluster.runtime.Runtime`'s timelines and transfer statistics:

* **per-node compute utilization** — execution busy time over the makespan
  (the compute term of the resource accounting in Eqs. 9–11);
* **port busy fraction** — fraction of the makespan each single-port
  resource (compute ports, storage nodes, the shared link) spends busy, the
  contention quantity Eqs. 12–13 bound;
* **idle-gap histogram** — distribution of idle stretches on the compute
  nodes (where a better schedule could still pack work);
* **transfer accounting** — bytes moved remotely vs. via compute-to-compute
  replication, disk-cache hits and evictions, and the file *reuse factor*
  (bytes consumed per byte staged) that replication is meant to maximize;
* **byte conservation** — every staged megabyte is either still resident on
  a disk cache or was evicted (``residual ≈ 0``), a cross-check of the
  cache bookkeeping.

:func:`compute_metrics` returns a :class:`RunMetrics` whose
:meth:`~RunMetrics.to_dict` slots straight into the run manifest
(:mod:`repro.obs.export`).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..cluster.trace import TraceEvent
from .decisions import DecisionLog

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.gantt import Timeline
    from ..cluster.runtime import Runtime
    from ..cluster.state import ClusterState
    from ..cluster.stats import TaskRecord

__all__ = [
    "IDLE_GAP_BUCKETS",
    "RunMetrics",
    "compute_metrics",
    "conservation_residual_mb",
]

#: Upper edges (seconds) of the idle-gap histogram buckets; the last bucket
#: is open-ended. Chosen to span sub-second scheduling slack up to the
#: multi-minute starvation gaps disk pressure produces in Fig. 5(b).
IDLE_GAP_BUCKETS: tuple[float, ...] = (0.1, 1.0, 10.0, 100.0)

_EPS = 1e-9


def _bucket_label(i: int) -> str:
    if i == 0:
        return f"<{IDLE_GAP_BUCKETS[0]:g}s"
    if i == len(IDLE_GAP_BUCKETS):
        return f">={IDLE_GAP_BUCKETS[-1]:g}s"
    return f"{IDLE_GAP_BUCKETS[i - 1]:g}-{IDLE_GAP_BUCKETS[i]:g}s"


def _bucket_of(gap: float) -> str:
    for i, edge in enumerate(IDLE_GAP_BUCKETS):
        if gap < edge:
            return _bucket_label(i)
    return _bucket_label(len(IDLE_GAP_BUCKETS))


@dataclass
class RunMetrics:
    """Derived metrics of one executed batch run (JSON-ready)."""

    makespan_s: float
    # Compute-side utilization (exec intervals only), per node and averaged.
    node_exec_utilization: dict[str, float] = field(default_factory=dict)
    mean_exec_utilization: float = 0.0
    # Busy fraction of every single-port resource (any interval kind).
    port_busy_fraction: dict[str, float] = field(default_factory=dict)
    # Histogram of idle gaps on the compute-node timelines.
    idle_gap_histogram: dict[str, int] = field(default_factory=dict)
    # Transfer / cache accounting (whole run).
    remote_transfers: int = 0
    remote_volume_mb: float = 0.0
    replications: int = 0
    replication_volume_mb: float = 0.0
    evictions: int = 0
    evicted_volume_mb: float = 0.0
    cache_hits: int = 0
    cache_hit_volume_mb: float = 0.0
    # Derived ratios.
    disk_hit_ratio: float = 0.0  # hits / (hits + transfers)
    file_reuse_factor: float = 1.0  # bytes consumed / bytes staged
    replicated_fraction: float = 0.0  # replicated bytes / staged bytes
    conservation_residual_mb: float = 0.0  # staged - resident - evicted
    # Scheduler estimation error (when a decision log was replayed).
    estimation: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "makespan_s": self.makespan_s,
            "node_exec_utilization": dict(self.node_exec_utilization),
            "mean_exec_utilization": self.mean_exec_utilization,
            "port_busy_fraction": dict(self.port_busy_fraction),
            "idle_gap_histogram": dict(self.idle_gap_histogram),
            "remote_transfers": self.remote_transfers,
            "remote_volume_mb": self.remote_volume_mb,
            "replications": self.replications,
            "replication_volume_mb": self.replication_volume_mb,
            "evictions": self.evictions,
            "evicted_volume_mb": self.evicted_volume_mb,
            "cache_hits": self.cache_hits,
            "cache_hit_volume_mb": self.cache_hit_volume_mb,
            "disk_hit_ratio": self.disk_hit_ratio,
            "file_reuse_factor": self.file_reuse_factor,
            "replicated_fraction": self.replicated_fraction,
            "conservation_residual_mb": self.conservation_residual_mb,
            "estimation": self.estimation,
        }


def conservation_residual_mb(state: ClusterState) -> float:
    """Staged bytes minus (still-resident + evicted) bytes — should be ~0.

    Every megabyte that ever arrived on a compute disk (remote transfer or
    replication) must either still be resident in some node's cache or have
    been evicted; a non-zero residual means the cache bookkeeping leaked.
    Assumes the run started with empty compute disks (the paper's setup).
    """
    staged = state.stats.remote_volume_mb + state.stats.replication_volume_mb
    resident = sum(cache.used_mb for cache in state.caches)
    return staged - resident - state.stats.evicted_volume_mb


def _idle_gaps(tl: Timeline, start: float, end: float) -> list[float]:
    """Idle stretches on ``tl`` within ``[start, end]``, including edges."""
    gaps: list[float] = []
    cursor = start
    for iv in tl.intervals:
        if iv.start > cursor + _EPS:
            gaps.append(iv.start - cursor)
        cursor = max(cursor, iv.end)
    if end > cursor + _EPS:
        gaps.append(end - cursor)
    return gaps


def compute_metrics(
    runtime: Runtime,
    records: Sequence[TaskRecord] | None = None,
    decisions: DecisionLog | None = None,
) -> RunMetrics:
    """Derive :class:`RunMetrics` from an executed runtime.

    ``records`` (the executed :class:`~repro.cluster.stats.TaskRecord`\\ s)
    and ``decisions`` (a scheduler :class:`DecisionLog`) are optional; when
    both are present the decision log is replayed to report estimation
    error alongside the resource metrics.
    """
    makespan = max(runtime.clock, *(tl.horizon for tl in runtime.node_tl), 0.0)
    m = RunMetrics(makespan_s=makespan)
    horizon = makespan if makespan > _EPS else 1.0

    exec_busy: dict[str, float] = {}
    for i, tl in enumerate(runtime.node_tl):
        exec_tl = runtime.cpu_tl[i] if runtime.cpu_tl is not None else tl
        busy = sum(
            iv.duration
            for iv in exec_tl.intervals
            if TraceEvent(exec_tl.name, iv.start, iv.end, iv.tag).kind == "exec"
        )
        exec_busy[tl.name] = busy

    port_resources: list[Timeline] = list(runtime.node_tl) + list(runtime.storage_tl)
    if runtime.link_tl is not None:
        port_resources.append(runtime.link_tl)
    for tl in port_resources:
        m.port_busy_fraction[tl.name] = tl.busy_time() / horizon

    m.node_exec_utilization = {n: b / horizon for n, b in exec_busy.items()}
    if m.node_exec_utilization:
        m.mean_exec_utilization = sum(m.node_exec_utilization.values()) / len(
            m.node_exec_utilization
        )

    hist: dict[str, int] = {_bucket_label(i): 0 for i in range(len(IDLE_GAP_BUCKETS) + 1)}
    for i, tl in enumerate(runtime.node_tl):
        busy_tls = [tl] if runtime.cpu_tl is None else [tl, runtime.cpu_tl[i]]
        for busy_tl in busy_tls:
            for gap in _idle_gaps(busy_tl, 0.0, makespan):
                hist[_bucket_of(gap)] += 1
    m.idle_gap_histogram = hist

    stats = runtime.state.stats
    m.remote_transfers = stats.remote_transfers
    m.remote_volume_mb = stats.remote_volume_mb
    m.replications = stats.replications
    m.replication_volume_mb = stats.replication_volume_mb
    m.evictions = stats.evictions
    m.evicted_volume_mb = stats.evicted_volume_mb
    m.cache_hits = stats.cache_hits
    m.cache_hit_volume_mb = stats.cache_hit_volume_mb

    transfers = stats.remote_transfers + stats.replications
    accesses = stats.cache_hits + transfers
    m.disk_hit_ratio = stats.cache_hits / accesses if accesses else 0.0
    staged_mb = stats.remote_volume_mb + stats.replication_volume_mb
    if staged_mb > _EPS:
        m.file_reuse_factor = (staged_mb + stats.cache_hit_volume_mb) / staged_mb
        m.replicated_fraction = stats.replication_volume_mb / staged_mb
    m.conservation_residual_mb = conservation_residual_mb(runtime.state)

    if decisions is not None:
        if records is not None:
            m.estimation = decisions.summary(records)
        else:
            m.estimation = decisions.summary()
    return m
