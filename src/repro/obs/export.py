"""Run manifest assembly and export (JSON, NDJSON, merged Chrome trace).

A *run manifest* is the single JSON artifact describing one executed batch
run: what was run (config + content digest + package versions), what came
out (makespan, transfer statistics, the derived :class:`RunMetrics`), and
how the time was spent (the :data:`~repro.obs.core.telemetry` snapshot and
the scheduler decision-log summary). Its shape is frozen by the checked-in
JSON Schema ``run-manifest.schema.json`` next to this module; CI validates
every manifest it produces against that schema
(:func:`validate_manifest` uses the dependency-free validator in
:mod:`repro.obs.schema`).

Exports:

* :func:`build_manifest` — assemble the manifest from a finished
  :class:`~repro.core.plan.BatchResult` (duck-typed so this module never
  imports the scheduler layer above it);
* :func:`write_manifest` / :func:`write_ndjson` — persist as one JSON
  document or as newline-delimited records (one line per counter, gauge,
  span, metric and decision — greppable and stream-appendable);
* :func:`merged_chrome_trace` — the simulated-time Gantt trace
  (:func:`~repro.cluster.trace.to_chrome_trace`) merged with the
  wall-clock telemetry span events as a second Perfetto process;
* :func:`merge_snapshots` — aggregate per-cell telemetry snapshots from
  parallel workers into one (counters sum, span stats merge).
"""

from __future__ import annotations

import json
import math
import platform as _platform
from collections.abc import Iterable, Iterator, Mapping
from pathlib import Path
from typing import TYPE_CHECKING, Any

from .core import Telemetry
from .metrics import RunMetrics
from .schema import validate

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.runtime import Runtime
    from ..core.plan import BatchResult

__all__ = [
    "MANIFEST_KIND",
    "MANIFEST_VERSION",
    "build_manifest",
    "build_stream_manifest",
    "load_schema",
    "manifest_to_ndjson",
    "merge_snapshots",
    "merged_chrome_trace",
    "validate_manifest",
    "write_manifest",
    "write_ndjson",
]

MANIFEST_KIND = "repro-run-manifest"
MANIFEST_VERSION = 1

#: The checked-in JSON Schema the manifest must validate against.
SCHEMA_PATH = Path(__file__).with_name("run-manifest.schema.json")


def _jsonable(value: Any) -> Any:
    """Make a value strictly JSON-serialisable (no NaN/Infinity literals)."""
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def load_schema() -> dict[str, Any]:
    """Load the checked-in run-manifest JSON Schema."""
    with open(SCHEMA_PATH) as fh:
        doc = json.load(fh)
    assert isinstance(doc, dict)
    return doc


def build_manifest(
    result: BatchResult,
    *,
    config: Mapping[str, Any] | None = None,
    config_digest: str | None = None,
    telemetry_snapshot: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the run manifest for one finished batch run.

    ``result`` is a :class:`~repro.core.plan.BatchResult`; the attributes
    filled by ``run_batch(..., telemetry=True)`` (``metrics``,
    ``decision_log``, ``telemetry``) flow into the manifest when present.
    ``telemetry_snapshot`` overrides the snapshot attached to the result
    (used by callers that merge several runs' registries first).
    """
    from .. import __version__  # deferred: the package root imports obs' users

    metrics = result.metrics
    decisions = result.decision_log
    snapshot = telemetry_snapshot if telemetry_snapshot is not None else result.telemetry
    stats = result.stats
    records = [r for sb in result.sub_batches for r in sb.execution.records]
    manifest: dict[str, Any] = {
        "kind": MANIFEST_KIND,
        "manifest_version": MANIFEST_VERSION,
        "versions": {
            "repro": __version__,
            "python": _platform.python_version(),
        },
        "config": dict(config) if config is not None else None,
        "config_digest": config_digest,
        "scheme": result.scheduler,
        "result": {
            "makespan_s": result.makespan,
            "scheduling_seconds": result.scheduling_seconds,
            "sub_batches": result.num_sub_batches,
            "tasks": result.num_tasks,
        },
        "stats": {
            "remote_transfers": stats.remote_transfers,
            "remote_volume_mb": stats.remote_volume_mb,
            "replications": stats.replications,
            "replication_volume_mb": stats.replication_volume_mb,
            "evictions": stats.evictions,
            "evicted_volume_mb": stats.evicted_volume_mb,
            "cache_hits": stats.cache_hits,
            "cache_hit_volume_mb": stats.cache_hit_volume_mb,
        },
        "metrics": metrics.to_dict() if isinstance(metrics, RunMetrics) else None,
        "telemetry": dict(snapshot) if snapshot is not None else None,
        "decisions": decisions.summary(records) if decisions is not None else None,
    }
    # Fault-injection runs carry their recovery counters; fault-free runs
    # omit the key entirely so existing golden manifests stay byte-stable.
    fault_stats = getattr(result, "fault_stats", None)
    if fault_stats is not None:
        manifest["faults"] = fault_stats.to_dict()
    # Time-series probes likewise: the key exists only on runs executed
    # with ``run_batch(timeseries=...)`` enabled (repro.obs.timeseries).
    timeseries = getattr(result, "timeseries", None)
    if timeseries is not None:
        manifest["timeseries"] = timeseries
    out = _jsonable(manifest)
    assert isinstance(out, dict)
    return out


def build_stream_manifest(
    stream_result: Any,
    *,
    config: Mapping[str, Any] | None = None,
    config_digest: str | None = None,
) -> dict[str, Any]:
    """Assemble the run manifest for one streamed session.

    ``stream_result`` is a :class:`~repro.online.session.StreamResult`
    (duck-typed, like :func:`build_manifest`): the standard ``result`` and
    ``stats`` blocks summarise the whole stream (total span, cumulative
    transfer statistics), and the schema-versioned optional ``online``
    block carries the queueing metrics, per-batch and per-job records
    (``stream_result.to_dict()``). Validates against the same
    ``run-manifest.schema.json``.
    """
    from .. import __version__  # deferred: the package root imports obs' users

    stats = stream_result.stats
    manifest: dict[str, Any] = {
        "kind": MANIFEST_KIND,
        "manifest_version": MANIFEST_VERSION,
        "versions": {
            "repro": __version__,
            "python": _platform.python_version(),
        },
        "config": dict(config) if config is not None else None,
        "config_digest": config_digest,
        "scheme": stream_result.scheme,
        "result": {
            "makespan_s": stream_result.total_span_s,
            "scheduling_seconds": sum(
                b.scheduling_seconds for b in stream_result.batches
            ),
            "sub_batches": sum(b.sub_batches for b in stream_result.batches),
            "tasks": stream_result.num_jobs,
        },
        "stats": {
            "remote_transfers": stats.remote_transfers,
            "remote_volume_mb": stats.remote_volume_mb,
            "replications": stats.replications,
            "replication_volume_mb": stats.replication_volume_mb,
            "evictions": stats.evictions,
            "evicted_volume_mb": stats.evicted_volume_mb,
            "cache_hits": stats.cache_hits,
            "cache_hit_volume_mb": stats.cache_hit_volume_mb,
        },
        "metrics": None,
        "telemetry": None,
        "decisions": None,
        "online": stream_result.to_dict(),
    }
    fault_stats = getattr(stream_result, "fault_stats", None)
    if fault_stats is not None:
        manifest["faults"] = fault_stats.to_dict()
    timeseries = getattr(stream_result, "timeseries", None)
    if timeseries is not None:
        manifest["timeseries"] = timeseries
    out = _jsonable(manifest)
    assert isinstance(out, dict)
    return out


def validate_manifest(manifest: Mapping[str, Any]) -> list[str]:
    """Validate a manifest against the checked-in schema; returns errors."""
    return validate(dict(manifest), load_schema())


def write_manifest(manifest: Mapping[str, Any], path: str | Path) -> Path:
    """Write the manifest as one indented JSON document."""
    path = Path(path)
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=2, allow_nan=False)
        fh.write("\n")
    return path


def manifest_to_ndjson(manifest: Mapping[str, Any]) -> Iterator[str]:
    """Flatten a manifest into newline-delimited JSON records.

    The first line is a ``header`` record carrying run identity (digest,
    scheme, versions, result and transfer stats); every counter, gauge,
    span, metric and the decision summary follow as one typed line each.
    """
    header = {
        "type": "header",
        "kind": manifest.get("kind"),
        "manifest_version": manifest.get("manifest_version"),
        "versions": manifest.get("versions"),
        "config_digest": manifest.get("config_digest"),
        "scheme": manifest.get("scheme"),
        "result": manifest.get("result"),
        "stats": manifest.get("stats"),
    }
    yield json.dumps(header, sort_keys=True, allow_nan=False)
    telemetry = manifest.get("telemetry") or {}
    for name, value in sorted(telemetry.get("counters", {}).items()):
        yield json.dumps({"type": "counter", "name": name, "value": value})
    for name, value in sorted(telemetry.get("gauges", {}).items()):
        yield json.dumps({"type": "gauge", "name": name, "value": value})
    for path, span in sorted(telemetry.get("spans", {}).items()):
        yield json.dumps({"type": "span", "path": path, **span})
    metrics = manifest.get("metrics") or {}
    for name, value in sorted(metrics.items()):
        yield json.dumps(
            {"type": "metric", "name": name, "value": value}, allow_nan=False
        )
    decisions = manifest.get("decisions")
    if decisions is not None:
        yield json.dumps({"type": "decisions", **decisions}, allow_nan=False)
    faults = manifest.get("faults")
    if faults is not None:
        yield json.dumps({"type": "faults", **faults}, allow_nan=False)
    online = manifest.get("online")
    if online is not None:
        # One summary line for the stream, one per dispatched batch; the
        # per-job array stays in the JSON manifest (it can be long).
        yield json.dumps(
            {
                "type": "online",
                "mode": online.get("mode"),
                "policy": online.get("policy"),
                "scheme": online.get("scheme"),
                **(online.get("queueing") or {}),
            },
            allow_nan=False,
        )
        for batch in online.get("batches", []):
            yield json.dumps({"type": "online-batch", **batch}, allow_nan=False)
    timeseries = manifest.get("timeseries")
    if timeseries is not None:
        # One summary line per series (name, unit, point count, last value)
        # keeps the NDJSON greppable without inlining whole point arrays;
        # events are small and flatten one per line.
        for name, series in sorted(timeseries.get("series", {}).items()):
            points = series.get("points", [])
            yield json.dumps(
                {
                    "type": "timeseries",
                    "name": name,
                    "unit": series.get("unit"),
                    "points": len(points),
                    "last": points[-1][1] if points else None,
                },
                allow_nan=False,
            )
        for event in timeseries.get("events", []):
            yield json.dumps(
                {"type": "timeseries-event", **event}, allow_nan=False
            )


def write_ndjson(manifest: Mapping[str, Any], path: str | Path) -> Path:
    """Write the manifest's NDJSON form, one record per line."""
    path = Path(path)
    with open(path, "w") as fh:
        for line in manifest_to_ndjson(manifest):
            fh.write(line + "\n")
    return path


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Aggregate telemetry snapshots (e.g. per-cell, across workers).

    Counters sum; span stats merge (counts and totals sum, min/max extend);
    gauges keep the last seen value (they are point-in-time readings, so a
    cross-cell aggregate has no single meaningful reduction — consumers
    needing per-cell gauges should read the per-cell manifests instead).
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    spans: dict[str, dict[str, float]] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + float(value)
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = float(value)
        for path, stats in snap.get("spans", {}).items():
            agg = spans.get(path)
            if agg is None:
                spans[path] = dict(stats)
                continue
            agg["count"] += stats["count"]
            agg["total_s"] += stats["total_s"]
            agg["min_s"] = min(agg["min_s"], stats["min_s"])
            agg["max_s"] = max(agg["max_s"], stats["max_s"])
            agg["mean_s"] = agg["total_s"] / agg["count"] if agg["count"] else 0.0
    return {
        "counters": counters,
        "gauges": gauges,
        "spans": {p: spans[p] for p in sorted(spans)},
    }


def merged_chrome_trace(runtime: Runtime, registry: Telemetry) -> str:
    """Chrome/Perfetto trace: simulated Gantt chart + wall-clock spans.

    The runtime's resource timelines export as process 0 (simulated
    seconds, as :func:`~repro.cluster.trace.to_chrome_trace` always did);
    the telemetry registry's retained span events (collect them with
    ``telemetry.enable(keep_events=True)``) are added as process 1 on their
    own wall-clock timebase, one thread per top-level span path. Perfetto
    renders the two processes as separate track groups, so the different
    time bases coexist in one file.
    """
    from ..cluster.trace import to_chrome_trace

    doc = json.loads(to_chrome_trace(runtime))
    events: list[dict[str, Any]] = doc["traceEvents"]
    for ev in events:
        ev["pid"] = 0
    events.insert(
        0,
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": "simulated cluster (Gantt)"}},
    )
    events.append(
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "telemetry (wall clock)"}},
    )
    tids: dict[str, int] = {}
    for path, start_s, duration_s in registry.events:
        root = path.split("/", 1)[0]
        tid = tids.setdefault(root, len(tids))
        events.append(
            {
                "name": path,
                "cat": "telemetry",
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": start_s * 1e6,
                "dur": duration_s * 1e6,
            }
        )
    for root, tid in tids.items():
        events.append(
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
             "args": {"name": root}},
        )
    return json.dumps(doc, indent=None)
