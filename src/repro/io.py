"""Batch and result serialization (JSON) for reproducible experiments.

Workload generators are deterministic given a seed, but downstream users
often need to pin the *exact* batch (e.g. to compare schedulers across
machines or library versions, or to feed externally-defined workloads into
the schedulers). This module round-trips batches and batch results through
a small, versioned JSON schema.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .batch import Batch, FileInfo, Task
from .core.plan import BatchResult

__all__ = [
    "batch_to_dict",
    "batch_from_dict",
    "save_batch",
    "load_batch",
    "result_to_dict",
    "save_result",
]

SCHEMA_VERSION = 1


def batch_to_dict(batch: Batch) -> dict[str, Any]:
    """Lower a batch to plain JSON-ready data."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "batch",
        "files": [
            {
                "id": f.file_id,
                "size_mb": f.size_mb,
                "storage_node": f.storage_node,
            }
            for f in sorted(batch.files.values(), key=lambda f: f.file_id)
        ],
        "tasks": [
            {
                "id": t.task_id,
                "files": list(t.files),
                "compute_time": t.compute_time,
            }
            for t in batch.tasks
        ],
    }


def batch_from_dict(data: dict[str, Any]) -> Batch:
    """Rebuild a batch from :func:`batch_to_dict` output."""
    if data.get("kind") != "batch":
        raise ValueError(f"not a batch document (kind={data.get('kind')!r})")
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported batch schema {schema!r} (expected {SCHEMA_VERSION})"
        )
    files = {
        f["id"]: FileInfo(f["id"], float(f["size_mb"]), int(f["storage_node"]))
        for f in data["files"]
    }
    tasks = [
        Task(t["id"], tuple(t["files"]), float(t["compute_time"]))
        for t in data["tasks"]
    ]
    return Batch(tasks, files)


def save_batch(batch: Batch, path: str | Path):
    """Write a batch as JSON."""
    Path(path).write_text(json.dumps(batch_to_dict(batch), indent=1))


def load_batch(path: str | Path) -> Batch:
    """Read a batch written by :func:`save_batch`."""
    return batch_from_dict(json.loads(Path(path).read_text()))


def result_to_dict(result: BatchResult) -> dict[str, Any]:
    """Lower a batch result (summary level) to JSON-ready data."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "batch_result",
        "scheduler": result.scheduler,
        "makespan_s": result.makespan,
        "scheduling_seconds": result.scheduling_seconds,
        "num_tasks": result.num_tasks,
        "num_sub_batches": result.num_sub_batches,
        "stats": {
            "remote_transfers": result.stats.remote_transfers,
            "remote_volume_mb": result.stats.remote_volume_mb,
            "replications": result.stats.replications,
            "replication_volume_mb": result.stats.replication_volume_mb,
            "evictions": result.stats.evictions,
            "evicted_volume_mb": result.stats.evicted_volume_mb,
        },
        "sub_batches": [
            {
                "tasks": list(sb.plan.task_ids),
                "mapping": dict(sb.plan.mapping),
                "start": sb.execution.start_time,
                "makespan": sb.execution.makespan,
                "scheduling_seconds": sb.scheduling_seconds,
            }
            for sb in result.sub_batches
        ],
    }


def save_result(result: BatchResult, path: str | Path):
    """Write a batch result as JSON."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=1))
