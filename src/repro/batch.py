"""Core data model: files, tasks and batches (Section 2).

A :class:`Batch` is a set of independent sequential tasks; each task names
the data files it reads. Files initially reside on exactly one storage node.
Tasks may share files — the *batch-shared I/O* pattern the schedulers
exploit — and the module provides the sharing/overlap statistics used to
characterise workloads (high / medium / low overlap in Section 7).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Iterable, Mapping

__all__ = ["FileInfo", "Task", "Batch", "overlap_fraction", "pairwise_overlap"]


@dataclass(frozen=True)
class FileInfo:
    """A data file: unit of I/O transfer from the storage cluster.

    ``storage_node`` is the storage node holding the authoritative copy
    (files are declustered across storage nodes by the workload generators).
    """

    file_id: str
    size_mb: float
    storage_node: int

    def __post_init__(self):
        if self.size_mb <= 0:
            raise ValueError(f"file {self.file_id}: size must be positive")
        if self.storage_node < 0:
            raise ValueError(f"file {self.file_id}: bad storage node")


@dataclass(frozen=True)
class Task:
    """An independent sequential task reading a set of input files.

    ``compute_time`` is the pure CPU cost (``Comp_k`` in Eq. 10), excluding
    all I/O. ``files`` is the task's ``Access_k`` set.
    """

    task_id: str
    files: tuple[str, ...]
    compute_time: float

    def __post_init__(self):
        if not self.files:
            raise ValueError(f"task {self.task_id}: needs at least one file")
        if len(set(self.files)) != len(self.files):
            raise ValueError(f"task {self.task_id}: duplicate files")
        if self.compute_time < 0:
            raise ValueError(f"task {self.task_id}: negative compute time")


class Batch:
    """A batch of tasks plus the catalog of files they reference."""

    def __init__(self, tasks: Iterable[Task], files: Mapping[str, FileInfo]):
        self.tasks: tuple[Task, ...] = tuple(tasks)
        self.files: dict[str, FileInfo] = dict(files)
        if len({t.task_id for t in self.tasks}) != len(self.tasks):
            raise ValueError("duplicate task ids")
        for t in self.tasks:
            for f in t.files:
                if f not in self.files:
                    raise ValueError(f"task {t.task_id} references unknown file {f}")
        self._by_id = {t.task_id: t for t in self.tasks}

    # -- lookups ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    def task(self, task_id: str) -> Task:
        return self._by_id[task_id]

    def file(self, file_id: str) -> FileInfo:
        return self.files[file_id]

    def file_size(self, file_id: str) -> float:
        return self.files[file_id].size_mb

    def task_input_mb(self, task: Task | str) -> float:
        """Total input volume of a task."""
        t = self.task(task) if isinstance(task, str) else task
        return sum(self.files[f].size_mb for f in t.files)

    def subset(self, task_ids: Iterable[str]) -> Batch:
        """A batch restricted to the given tasks (file catalog shared)."""
        wanted = [self._by_id[t] for t in task_ids]
        used = {f for t in wanted for f in t.files}
        return Batch(wanted, {f: self.files[f] for f in used})

    # -- sharing structure (Section 2 / Section 4 notation) -----------------------
    def access_map(self) -> dict[str, tuple[str, ...]]:
        """``Access_k``: task id -> file ids."""
        return {t.task_id: t.files for t in self.tasks}

    def require_map(self) -> dict[str, tuple[str, ...]]:
        """``Require_l``: file id -> ids of tasks that read it."""
        req: dict[str, list[str]] = {}
        for t in self.tasks:
            for f in t.files:
                req.setdefault(f, []).append(t.task_id)
        return {f: tuple(ts) for f, ts in req.items()}

    def referenced_files(self) -> set[str]:
        return {f for t in self.tasks for f in t.files}

    # -- volumes ----------------------------------------------------------------
    @property
    def distinct_file_mb(self) -> float:
        """Disk space to hold one copy of every referenced file."""
        return sum(self.files[f].size_mb for f in self.referenced_files())

    @property
    def total_access_mb(self) -> float:
        """Sum of task input volumes (shared files counted repeatedly)."""
        return sum(self.task_input_mb(t) for t in self.tasks)

    @property
    def total_compute_time(self) -> float:
        return sum(t.compute_time for t in self.tasks)

    def max_task_footprint_mb(self) -> float:
        """Largest single-task input volume (must fit on one node's disk)."""
        return max(self.task_input_mb(t) for t in self.tasks) if self.tasks else 0.0

    def __repr__(self):
        return (
            f"Batch({len(self.tasks)} tasks, {len(self.referenced_files())} files, "
            f"{self.distinct_file_mb:.0f} MB distinct)"
        )


def overlap_fraction(batch: Batch) -> float:
    """Global sharing fraction: 1 - distinct accesses / total accesses.

    0 means no file is shared; approaching 1 means all tasks read the same
    files. Cheap summary used in workload reports.
    """
    total = sum(len(t.files) for t in batch.tasks)
    if total == 0:
        return 0.0
    distinct = len(batch.referenced_files())
    return 1.0 - distinct / total


def pairwise_overlap(batch: Batch, sample_pairs: int | None = None, seed: int = 0) -> float:
    """Mean pairwise file overlap between tasks (the paper's workload knob).

    For a task pair the overlap is ``|A ∩ B| / min(|A|, |B|)``; the batch
    value is the mean over all (or ``sample_pairs`` random) pairs. The SAT
    and IMAGE generators are calibrated against this metric to reproduce the
    paper's 85 % / 40 % / 10 % (or 0 %) workloads.
    """
    tasks = batch.tasks
    n = len(tasks)
    if n < 2:
        return 0.0
    sets = [frozenset(t.files) for t in tasks]
    pairs: Iterable[tuple[int, int]]
    total_pairs = n * (n - 1) // 2
    if sample_pairs is not None and sample_pairs < total_pairs:
        import numpy as np

        rng = np.random.default_rng(seed)
        seen = set()
        while len(seen) < sample_pairs:
            i, j = rng.integers(0, n, size=2)
            if i != j:
                seen.add((min(i, j), max(i, j)))
        pairs = seen
    else:
        pairs = itertools.combinations(range(n), 2)
    acc = 0.0
    count = 0
    for i, j in pairs:
        a, b = sets[i], sets[j]
        acc += len(a & b) / min(len(a), len(b))
        count += 1
    return acc / count if count else 0.0
