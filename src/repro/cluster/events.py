"""Execution event log recorded by the runtime when auditing is enabled.

The Gantt timelines alone cannot answer every post-hoc question — evictions
are instantaneous cache decisions with no busy interval, and an interval's
tag does not say which task consumed a transferred file.  When a
:class:`~repro.cluster.runtime.Runtime` is constructed with ``audit=True``
it appends one event here per committed transfer, push, execution and
eviction, in *commit order* (the causal order of cache mutations).  The
schedule auditor (:mod:`repro.analysis.audit`) replays this trail against
the timelines to re-verify the paper's execution-time invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "TransferEvent",
    "FailedTransferEvent",
    "ExecEvent",
    "EvictionEvent",
    "CrashEvent",
    "CacheHitEvent",
    "AuditTrail",
]


@dataclass(frozen=True)
class TransferEvent:
    """One committed file transfer onto a compute node.

    ``kind`` is ``"remote"`` or ``"replica"``; ``push`` marks proactive
    staging (DLL) as opposed to on-demand staging for a committed task.
    """

    seq: int
    file_id: str
    size_mb: float
    kind: str
    source_node: int | None
    dest: int
    start: float
    end: float
    push: bool = False


@dataclass(frozen=True)
class FailedTransferEvent:
    """One injected transfer failure (fault model), before any retry.

    The failed attempt still occupied ``[start, end)`` on its resources
    (tagged ``xfail:``); ``attempt`` counts from 0 within one staging
    session. The auditor's E7 invariant checks every failed attempt is
    followed by a successful transfer of the same file to the same node.
    """

    seq: int
    file_id: str
    size_mb: float
    kind: str
    source_node: int | None
    dest: int
    start: float
    end: float
    attempt: int = 0


@dataclass(frozen=True)
class ExecEvent:
    """One committed task execution with the input files it consumed."""

    seq: int
    task_id: str
    node: int
    files: tuple[str, ...]
    start: float
    end: float


@dataclass(frozen=True)
class EvictionEvent:
    """One file dropped from a node's disk cache to make room."""

    seq: int
    node: int
    file_id: str
    size_mb: float


@dataclass(frozen=True)
class CacheHitEvent:
    """One task input served from a node's disk cache (no transfer).

    Recorded only while the cluster state's cross-batch carryover tracking
    is armed (online multi-batch sessions, :mod:`repro.online`), keeping
    single-batch audit trails unchanged. ``cross_batch`` marks hits the
    state attributed to a copy resident since the prior batch boundary; the
    auditor's E8 invariant replays the trail to verify that attribution.
    """

    seq: int
    node: int
    file_id: str
    size_mb: float
    cross_batch: bool


@dataclass(frozen=True)
class CrashEvent:
    """A compute node's permanent failure (fault model).

    ``lost_files`` lists the ``(file_id, size_mb)`` cache contents dropped
    with the node; the auditor clears the node's replayed disk occupancy
    here and E6 rejects any later activity touching the node.
    """

    seq: int
    node: int
    time: float
    lost_files: tuple[tuple[str, float], ...] = ()


@dataclass
class AuditTrail:
    """Commit-ordered event log of one runtime's whole batch execution.

    ``initial_holdings`` snapshots files already cached per node (with their
    sizes) when the runtime was created — normally empty, as the paper
    starts all files on the storage cluster — so the auditor knows which
    files need no transfer and what they occupy.
    """

    transfers: list[TransferEvent] = field(default_factory=list)
    execs: list[ExecEvent] = field(default_factory=list)
    evictions: list[EvictionEvent] = field(default_factory=list)
    failed_transfers: list[FailedTransferEvent] = field(default_factory=list)
    crashes: list[CrashEvent] = field(default_factory=list)
    cache_hits: list[CacheHitEvent] = field(default_factory=list)
    initial_holdings: dict[int, dict[str, float]] = field(default_factory=dict)
    _seq: int = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def record_transfer(
        self,
        file_id: str,
        size_mb: float,
        kind: str,
        source_node: int | None,
        dest: int,
        start: float,
        end: float,
        push: bool = False,
    ) -> None:
        self.transfers.append(
            TransferEvent(
                self._next_seq(), file_id, size_mb, kind, source_node,
                dest, start, end, push,
            )
        )

    def record_exec(
        self, task_id: str, node: int, files: tuple[str, ...],
        start: float, end: float,
    ) -> None:
        self.execs.append(
            ExecEvent(self._next_seq(), task_id, node, files, start, end)
        )

    def record_eviction(self, node: int, file_id: str, size_mb: float) -> None:
        self.evictions.append(
            EvictionEvent(self._next_seq(), node, file_id, size_mb)
        )

    def record_failed_transfer(
        self,
        file_id: str,
        size_mb: float,
        kind: str,
        source_node: int | None,
        dest: int,
        start: float,
        end: float,
        attempt: int = 0,
    ) -> None:
        self.failed_transfers.append(
            FailedTransferEvent(
                self._next_seq(), file_id, size_mb, kind, source_node,
                dest, start, end, attempt,
            )
        )

    def record_crash(
        self, node: int, time: float, lost_files: tuple[tuple[str, float], ...]
    ) -> None:
        self.crashes.append(
            CrashEvent(self._next_seq(), node, time, lost_files)
        )

    def record_cache_hit(
        self, node: int, file_id: str, size_mb: float, cross_batch: bool
    ) -> None:
        self.cache_hits.append(
            CacheHitEvent(self._next_seq(), node, file_id, size_mb, cross_batch)
        )

    def in_commit_order(
        self,
    ) -> list[
        TransferEvent
        | ExecEvent
        | EvictionEvent
        | FailedTransferEvent
        | CrashEvent
        | CacheHitEvent
    ]:
        """All events merged back into their global commit order."""
        merged: list[
            TransferEvent
            | ExecEvent
            | EvictionEvent
            | FailedTransferEvent
            | CrashEvent
            | CacheHitEvent
        ] = [
            *self.transfers, *self.execs, *self.evictions,
            *self.failed_transfers, *self.crashes, *self.cache_hits,
        ]
        merged.sort(key=lambda e: e.seq)
        return merged
