"""Coupled storage/compute cluster simulation substrate.

Replaces the paper's physical testbeds (OSC compute cluster with XIO or
OSUMED storage) with a deterministic Gantt-chart simulator implementing the
paper's execution model: single-port nodes, serialized storage access, no
staging during execution, per-node disk caches, and the Section 6 dynamic
task-ordering/file-staging runtime.
"""

from .cache import CacheFullError, DiskCache
from .events import AuditTrail, EvictionEvent, ExecEvent, TransferEvent
from .gantt import Interval, Overlay, Timeline, earliest_common_slot
from .platform import (
    MBPS_8GBIT,
    MBPS_100MBIT,
    ComputeNode,
    Platform,
    StorageNode,
    osc_osumed,
    osc_xio,
)
from .runtime import PlannedSource, Runtime, StagingPlan
from .state import ClusterState, TransferStats
from .stats import ExecutionResult, TaskRecord
from .trace import TraceEvent, render_ascii, to_chrome_trace, trace_events

__all__ = [
    "ComputeNode",
    "StorageNode",
    "Platform",
    "osc_xio",
    "osc_osumed",
    "MBPS_100MBIT",
    "MBPS_8GBIT",
    "Timeline",
    "Overlay",
    "Interval",
    "earliest_common_slot",
    "DiskCache",
    "CacheFullError",
    "ClusterState",
    "TransferStats",
    "Runtime",
    "StagingPlan",
    "PlannedSource",
    "ExecutionResult",
    "TaskRecord",
    "AuditTrail",
    "TransferEvent",
    "ExecEvent",
    "EvictionEvent",
    "TraceEvent",
    "trace_events",
    "render_ascii",
    "to_chrome_trace",
]
