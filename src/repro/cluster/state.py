"""Cluster-wide file placement state shared across sub-batch executions.

Tracks which compute nodes hold which files (the storage cluster always
retains the authoritative copy), per-node disk caches, and global transfer
statistics. The state persists across sub-batches: "subsequent iterations
... model the fact that copies of some files have already been created on
the compute cluster due to previous sub-batch executions" (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.dims import MB, Count, Seconds
from ..batch import Batch, FileInfo
from .cache import DiskCache
from .platform import Platform

__all__ = ["TransferStats", "ClusterState"]


@dataclass
class TransferStats:
    """Aggregate transfer/cache/eviction accounting across a run.

    Counts *and* bytes for every way a task input can be satisfied: a
    remote transfer from the storage cluster, a compute-to-compute
    replication, or a disk-cache hit (the file was already resident where
    the task ran). Evictions record what left the caches, so staged bytes
    are conserved: ``remote + replication = resident + evicted`` for a run
    that started with empty compute disks (checked by
    :func:`repro.obs.metrics.conservation_residual_mb`).
    """

    remote_transfers: Count = 0
    remote_volume_mb: MB = 0.0
    replications: Count = 0
    replication_volume_mb: MB = 0.0
    evictions: Count = 0
    evicted_volume_mb: MB = 0.0
    cache_hits: Count = 0
    cache_hit_volume_mb: MB = 0.0
    # Cache hits on files resident since the *prior batch's* commit (online
    # multi-batch sessions, repro.online). Always zero unless the state's
    # carryover tracking was armed with :meth:`ClusterState.begin_carryover`.
    cross_batch_hits: Count = 0
    cross_batch_hit_volume_mb: MB = 0.0

    def merge(self, other: TransferStats) -> TransferStats:
        return TransferStats(
            self.remote_transfers + other.remote_transfers,
            self.remote_volume_mb + other.remote_volume_mb,
            self.replications + other.replications,
            self.replication_volume_mb + other.replication_volume_mb,
            self.evictions + other.evictions,
            self.evicted_volume_mb + other.evicted_volume_mb,
            self.cache_hits + other.cache_hits,
            self.cache_hit_volume_mb + other.cache_hit_volume_mb,
            self.cross_batch_hits + other.cross_batch_hits,
            self.cross_batch_hit_volume_mb + other.cross_batch_hit_volume_mb,
        )


class ClusterState:
    """File placement on the compute cluster plus file catalog access."""

    def __init__(self, platform: Platform, files: dict[str, FileInfo]) -> None:
        self.platform = platform
        self.files = dict(files)
        self.caches = [
            DiskCache(n.node_id, n.disk_space_mb) for n in platform.compute_nodes
        ]
        # file id -> set of compute nodes currently holding it
        self._holders: dict[str, set[int]] = {}
        # Frozen snapshots handed out by :meth:`holders`, dropped whenever
        # the underlying set mutates. A frozenset's iteration order is a
        # pure function of its contents, so reusing the snapshot between
        # mutations yields byte-identical enumeration to rebuilding it —
        # and the snapshot's *identity* doubles as a cheap version tag for
        # downstream memos (see ``Runtime._dynamic_sources``).
        self._holders_cache: dict[str, frozenset[int]] = {}
        self.stats = TransferStats()
        # Compute nodes lost to injected crashes (empty without faults).
        self.dead_nodes: set[int] = set()
        # (node, file) pairs resident at the previous batch boundary; armed
        # by :meth:`begin_carryover` (online multi-batch sessions only) and
        # None otherwise, keeping single-batch runs allocation-free.
        self._carryover: set[tuple[int, str]] | None = None

    @classmethod
    def initial(cls, platform: Platform, batch: Batch) -> ClusterState:
        """All files on the storage cluster only (the paper's assumption)."""
        return cls(platform, batch.files)

    def register_files(self, files: dict[str, FileInfo]) -> None:
        """Add catalog entries (e.g. when running successive batches)."""
        self.files.update(files)

    def begin_carryover(self) -> None:
        """Snapshot current residency as the prior batch's committed state.

        Online sessions (:mod:`repro.online`) call this at every batch
        boundary: cache hits on a pair still in the snapshot count as
        *cross-batch* hits — the payoff of warm-cache carryover — until the
        copy is evicted, crashed away or re-staged. Audit invariant E8
        verifies the counted hits against the commit-ordered trail.
        """
        self._carryover = {
            (cache.node_id, f) for cache in self.caches for f in cache.files
        }

    @property
    def carryover_active(self) -> bool:
        """Whether cross-batch hit tracking is armed (online sessions)."""
        return self._carryover is not None

    # -- queries ---------------------------------------------------------------
    def holders(self, file_id: str) -> frozenset[int]:
        """Compute nodes currently caching ``file_id``."""
        snap = self._holders_cache.get(file_id)
        if snap is None:
            snap = frozenset(self._holders.get(file_id, ()))
            self._holders_cache[file_id] = snap
        return snap

    def num_copies(self, file_id: str) -> Count:
        """Copies on the compute cluster (``Numcopies`` of Eq. 22)."""
        return len(self._holders.get(file_id, ()))

    def has_file(self, node_id: int, file_id: str) -> bool:
        return file_id in self.caches[node_id]

    def size_of(self, file_id: str) -> MB:
        return self.files[file_id].size_mb

    def storage_node_of(self, file_id: str) -> int:
        return self.files[file_id].storage_node

    def files_on(self, node_id: int) -> tuple[str, ...]:
        return self.caches[node_id].files

    def alive_nodes(self) -> list[int]:
        """Compute-node ids still usable for mapping (crash-aware)."""
        return [
            n.node_id
            for n in self.platform.compute_nodes
            if n.node_id not in self.dead_nodes
        ]

    # -- mutation ---------------------------------------------------------------
    def place(self, node_id: int, file_id: str, now: Seconds = 0.0) -> None:
        """Record that ``file_id`` is now cached on ``node_id``."""
        self.caches[node_id].add(file_id, self.size_of(file_id), now)
        self._holders.setdefault(file_id, set()).add(node_id)
        self._holders_cache.pop(file_id, None)

    def drop(self, node_id: int, file_id: str) -> None:
        """Remove a cached copy (explicit eviction between sub-batches)."""
        self.caches[node_id].remove(file_id)
        self._forget_holder(node_id, file_id)

    def evict(self, node_id: int, file_id: str) -> None:
        """Drop a cached copy and record it as an eviction."""
        self.drop(node_id, file_id)
        self.record_eviction(self.size_of(file_id))

    def note_evicted(self, node_id: int, file_id: str) -> None:
        """Bookkeeping after the cache itself removed a file on demand."""
        self._forget_holder(node_id, file_id)
        self.record_eviction(self.size_of(file_id))

    def _forget_holder(self, node_id: int, file_id: str) -> None:
        holders = self._holders.get(file_id)
        if holders:
            holders.discard(node_id)
            if not holders:
                del self._holders[file_id]
            self._holders_cache.pop(file_id, None)
        if self._carryover is not None:
            # The copy is gone (evicted, dropped or crashed away); it can no
            # longer satisfy a cross-batch hit.
            self._carryover.discard((node_id, file_id))

    def mark_dead(self, node_id: int) -> list[tuple[str, float]]:
        """Fail ``node_id`` permanently, losing its cached files.

        Returns the ``(file_id, size_mb)`` copies that vanished with the
        node. The lost copies are *not* counted as evictions — they were
        destroyed, not displaced — so byte-conservation metrics report the
        imbalance honestly via the caller's fault stats.
        """
        lost: list[tuple[str, float]] = []
        if node_id in self.dead_nodes:
            return lost
        self.dead_nodes.add(node_id)
        cache = self.caches[node_id]
        for file_id in list(cache.files):
            size = cache.drop_unconditionally(file_id)
            self._forget_holder(node_id, file_id)
            lost.append((file_id, size))
        return lost

    def record_remote(self, size_mb: MB) -> None:
        self.stats.remote_transfers += 1
        self.stats.remote_volume_mb += size_mb

    def record_replication(self, size_mb: MB) -> None:
        self.stats.replications += 1
        self.stats.replication_volume_mb += size_mb

    def record_eviction(self, size_mb: MB) -> None:
        self.stats.evictions += 1
        self.stats.evicted_volume_mb += size_mb

    def record_cache_hit(
        self, size_mb: MB, node_id: int | None = None, file_id: str | None = None
    ) -> bool:
        """A task input served from the local disk cache (no transfer).

        Returns True when the hit was served by a copy resident since the
        prior batch boundary (a *cross-batch* hit; see
        :meth:`begin_carryover`) — always False outside online sessions.
        """
        self.stats.cache_hits += 1
        self.stats.cache_hit_volume_mb += size_mb
        if (
            self._carryover is not None
            and node_id is not None
            and (node_id, file_id) in self._carryover
        ):
            self.stats.cross_batch_hits += 1
            self.stats.cross_batch_hit_volume_mb += size_mb
            return True
        return False

    def check_consistency(self) -> None:
        """Invariant check used by tests: holder sets match cache contents."""
        for node in self.caches:
            for f in node.files:
                assert node.node_id in self._holders.get(f, set()), (
                    f"file {f} cached on {node.node_id} but not in holders"
                )
        for f, hs in self._holders.items():
            for n in hs:
                assert f in self.caches[n], (
                    f"holders claim {f} on node {n} but cache disagrees"
                )
