"""Per-compute-node disk caches with pinning and pluggable eviction.

Each compute node's local disk acts as a cache for staged files (Section 4).
Files used by tasks that are currently staged or running are *pinned* and
cannot be evicted; everything else is evictable in an order decided by an
eviction policy (see :mod:`repro.core.eviction`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable, Iterable

from ..analysis.dims import MB, Count, Seconds

__all__ = ["CacheFullError", "DiskCache"]


class CacheFullError(RuntimeError):
    """Raised when required space cannot be freed (pinned set too large)."""


@dataclass
class _Entry:
    size_mb: MB
    pin_count: Count = 0
    last_use: Seconds = 0.0


class DiskCache:
    """Disk cache of one compute node.

    Parameters
    ----------
    capacity_mb:
        Disk space available; ``math.inf`` models the unlimited-cache case.
    """

    def __init__(self, node_id: int, capacity_mb: MB = math.inf) -> None:
        if capacity_mb <= 0:
            raise ValueError("capacity must be positive")
        self.node_id = node_id
        self.capacity_mb: MB = capacity_mb
        self._entries: dict[str, _Entry] = {}
        self._used: MB = 0.0
        self.evictions: Count = 0
        self.evicted_volume: MB = 0.0
        #: Membership-change counter (bumped on every insert/remove, never on
        #: pin/touch). Lets callers cache derived views of the resident set —
        #: e.g. the runtime's size-sorted eviction order — and revalidate in
        #: O(1) instead of resorting per eviction query.
        self.mutations: Count = 0

    # -- queries ---------------------------------------------------------------
    def __contains__(self, file_id: str) -> bool:
        return file_id in self._entries

    @property
    def used_mb(self) -> MB:
        return self._used

    @property
    def free_mb(self) -> MB:
        return self.capacity_mb - self._used

    @property
    def files(self) -> tuple[str, ...]:
        return tuple(self._entries)

    def size_of(self, file_id: str) -> MB:
        return self._entries[file_id].size_mb

    def last_use(self, file_id: str) -> Seconds:
        return self._entries[file_id].last_use

    def is_pinned(self, file_id: str) -> bool:
        e = self._entries.get(file_id)
        return e is not None and e.pin_count > 0

    # -- mutation ----------------------------------------------------------------
    def add(self, file_id: str, size_mb: MB, now: Seconds = 0.0) -> None:
        """Record a staged file; caller must have ensured space first."""
        if file_id in self._entries:
            self._entries[file_id].last_use = now
            return
        if size_mb > self.free_mb + 1e-9:
            raise CacheFullError(
                f"node {self.node_id}: adding {file_id} ({size_mb} MB) exceeds "
                f"free space {self.free_mb} MB"
            )
        self._entries[file_id] = _Entry(size_mb=size_mb, last_use=now)
        self._used += size_mb
        self.mutations += 1

    def remove(self, file_id: str) -> MB:
        """Drop a file (eviction bookkeeping is the caller's job)."""
        e = self._entries.pop(file_id)
        self._used -= e.size_mb
        self.mutations += 1
        return e.size_mb

    def drop_unconditionally(self, file_id: str) -> MB:
        """Drop a file even if pinned (node crash — the copy is destroyed)."""
        return self.remove(file_id)

    def shrink(
        self,
        lost_mb: MB,
        victim_order: Callable[[Iterable[str]], list[str]],
        on_evict: Callable[[str], None] | None = None,
    ) -> list[str]:
        """Lose ``lost_mb`` of capacity (disk-loss fault); returns victims.

        Capacity never drops below zero. Unpinned files are evicted in
        ``victim_order`` until the survivors fit; raises
        :class:`CacheFullError` if pinned files alone exceed the shrunken
        capacity (cannot happen between sub-batches, when nothing is
        pinned).
        """
        self.capacity_mb = max(self.capacity_mb - lost_mb, 0.0)
        if self._used <= self.capacity_mb + 1e-9:
            return []
        candidates = [f for f, e in self._entries.items() if e.pin_count == 0]
        victims: list[str] = []
        for f in victim_order(candidates):
            if self._used <= self.capacity_mb + 1e-9:
                break
            size = self.remove(f)
            victims.append(f)
            self.evictions += 1
            self.evicted_volume += size
            if on_evict:
                on_evict(f)
        if self._used > self.capacity_mb + 1e-9:
            raise CacheFullError(
                f"node {self.node_id}: disk loss leaves {self._used} MB pinned "
                f"in {self.capacity_mb} MB of capacity"
            )
        return victims

    def touch(self, file_id: str, now: Seconds) -> None:
        self._entries[file_id].last_use = now

    def pin(self, file_id: str) -> None:
        self._entries[file_id].pin_count += 1

    def unpin(self, file_id: str) -> None:
        e = self._entries[file_id]
        if e.pin_count <= 0:
            raise ValueError(f"unpin of unpinned file {file_id}")
        e.pin_count -= 1

    # -- eviction ----------------------------------------------------------------
    def ensure_space(
        self,
        needed_mb: MB,
        victim_order: Callable[[Iterable[str]], list[str]],
        on_evict: Callable[[str], None] | None = None,
    ) -> list[str]:
        """Evict unpinned files until ``needed_mb`` fits; returns victims.

        ``victim_order`` ranks the given candidate file ids most-evictable
        first (the eviction policy). Raises :class:`CacheFullError` when even
        evicting every unpinned file is insufficient.
        """
        if needed_mb <= self.free_mb + 1e-9:
            return []
        candidates = [f for f, e in self._entries.items() if e.pin_count == 0]
        victims: list[str] = []
        for f in victim_order(candidates):
            if needed_mb <= self.free_mb + 1e-9:
                break
            size = self.remove(f)
            victims.append(f)
            self.evictions += 1
            self.evicted_volume += size
            if on_evict:
                on_evict(f)
        if needed_mb > self.free_mb + 1e-9:
            raise CacheFullError(
                f"node {self.node_id}: cannot free {needed_mb} MB "
                f"(free {self.free_mb} MB, all remaining files pinned)"
            )
        return victims
