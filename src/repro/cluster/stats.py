"""Execution result records produced by the runtime engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.dims import Seconds
from .state import TransferStats

__all__ = ["TaskRecord", "ExecutionResult"]


@dataclass(frozen=True)
class TaskRecord:
    """Timing of one executed task."""

    task_id: str
    node: int
    transfers_done: Seconds  # when the last input file became available
    exec_start: Seconds
    completion: Seconds


@dataclass
class ExecutionResult:
    """Outcome of executing one sub-batch through the runtime engine."""

    start_time: Seconds
    makespan: Seconds  # absolute completion time of the last task
    records: list[TaskRecord] = field(default_factory=list)
    stats: TransferStats = field(default_factory=TransferStats)
    # Tasks whose node crashed before they could run (fault injection);
    # the driver returns them to the pending pool and reschedules.
    failed_tasks: list[str] = field(default_factory=list)

    @property
    def elapsed(self) -> Seconds:
        """Wall-clock duration of this sub-batch."""
        return self.makespan - self.start_time

    @property
    def completion_order(self) -> list[str]:
        return [r.task_id for r in sorted(self.records, key=lambda r: r.completion)]
