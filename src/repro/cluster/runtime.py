"""Dynamic task ordering and file staging — Section 6 of the paper.

Given a mapping of tasks onto compute nodes (from any scheduler), this engine
decides *when* tasks run and *where* each file transfer comes from, by
maintaining Gantt charts for every storage node, compute node and the shared
inter-cluster link (when present):

* Tasks assigned to a node form a *group*; within each group the next task is
  the one with the least *earliest completion time* (ECT), evaluated against
  the current Gantt charts.
* A task's ECT is found by tentatively scheduling its missing file transfers
  one by one, always picking the file with the minimum transfer completion
  time (TCT) over all its possible sources (the storage node holding it, or
  any compute node that has a replica), then placing its execution (local
  read + CPU) after the last transfer.
* Initially the globally best task is committed first, then the best task of
  every other group (re-evaluated after each commit); afterwards, whenever a
  task completes, the next-best task from its group is committed — exactly
  the policy described in the paper.

Single-port model: a transfer occupies both endpoints' timelines; a compute
node's timeline also carries task execution, so no file is staged on a node
while a task executes there (the paper's non-overlap assumption, Eq. 12).

When an IP transfer plan is supplied, source selection follows the plan
instead of the dynamic minimum-TCT rule (with a dynamic fallback if the
planned source no longer holds the file), mirroring the paper's "minor
modification" for realising the IP solution at run time.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from ..analysis.dims import MB, Seconds
from ..batch import Task
from ..faults import FaultModel
from .cache import CacheFullError
from .events import AuditTrail
from .gantt import Overlay, Timeline, earliest_common_slot
from .platform import Platform
from .state import ClusterState, TransferStats
from .stats import ExecutionResult, TaskRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.timeseries import TimeSeriesProbe

__all__ = ["PlannedSource", "StagingPlan", "Runtime"]


@dataclass(frozen=True)
class PlannedSource:
    """A transfer source fixed by the IP solution.

    ``kind`` is ``"remote"`` (from the storage cluster) or ``"replica"``
    (from compute node ``source_node``).
    """

    kind: str
    source_node: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("remote", "replica"):
            raise ValueError(f"bad source kind {self.kind!r}")
        if self.kind == "replica" and self.source_node is None:
            raise ValueError("replica source requires source_node")


@dataclass
class StagingPlan:
    """Static staging decisions attached to a sub-batch mapping.

    ``sources`` fixes the source for (file, destination-node) pairs (IP
    scheduler). ``pushes`` are proactive transfers executed before the tasks
    start (the Data-Least-Loaded replications of the JDP baseline).
    """

    sources: dict[tuple[str, int], PlannedSource] = field(default_factory=dict)
    pushes: list[tuple[str, int]] = field(default_factory=list)


@dataclass
class _Tentative:
    """A tentatively scheduled task: its transfers and execution slot."""

    task: Task
    node: int
    overlays: dict[str, Overlay]
    transfers: list[tuple[str, str, int | None, float, float]]
    # (file_id, kind, source_node, start, duration)
    transfers_done: Seconds
    exec_start: Seconds
    ect: Seconds
    # Injected transfer failures preceding the successful attempts
    # (fault model only): (file_id, size, kind, source, start, end, attempt).
    failed_attempts: list[tuple[str, float, str, int | None, float, float, int]] = (
        field(default_factory=list)
    )


class _MissingIndex:
    """Incremental per-(node, task) missing-input tracking for one sub-batch.

    ``execute``'s candidate pre-filter ranks every pending task of a group
    by the volume of input bytes not yet on its node. Recomputing that from
    scratch is an O(T·F) scan per commit — O(T²·F) over a sub-batch. This
    index maintains each task's *missing set* event-driven (file placed /
    evicted / node crashed) and exposes the volumes as O(1) lookups.

    Decision identity: the volume is **never** accumulated incrementally —
    float ``+=``/``-=`` would round differently from the reference re-sum
    and the value feeds a ``sorted`` key. Instead, whenever a task's
    missing *set* changes, the volume is recomputed with the reference
    term order (``sum(size_of(f) for f in t.files if f missing)``), so it
    equals the from-scratch scan bit for bit.
    """

    def __init__(
        self, state: ClusterState, groups: Mapping[int, Sequence[Task]]
    ) -> None:
        self.state = state
        # node -> task_id -> set of input files not on the node
        self.miss: dict[int, dict[str, set[str]]] = {}
        # node -> task_id -> missing volume (reference summation order)
        self.mb: dict[int, dict[str, MB]] = {}
        # node -> file -> tasks of that group reading the file
        self.readers: dict[int, dict[str, list[Task]]] = {}
        self.done: set[str] = set()
        for node, tasks in groups.items():
            miss: dict[str, set[str]] = {}
            mb: dict[str, MB] = {}
            readers: dict[str, list[Task]] = {}
            for t in tasks:
                s = {f for f in t.files if not state.has_file(node, f)}
                miss[t.task_id] = s
                mb[t.task_id] = sum(
                    state.size_of(f) for f in t.files if f in s
                )
                for f in t.files:
                    readers.setdefault(f, []).append(t)
            self.miss[node] = miss
            self.mb[node] = mb
            self.readers[node] = readers

    def _refresh(self, node: int, t: Task, s: set[str]) -> None:
        self.mb[node][t.task_id] = sum(
            self.state.size_of(f) for f in t.files if f in s
        )

    def on_place(self, node: int, file_id: str) -> None:
        """``file_id`` became resident on ``node``."""
        readers = self.readers.get(node)
        if readers is None:
            return
        for t in readers.get(file_id, ()):
            if t.task_id in self.done:
                continue
            s = self.miss[node][t.task_id]
            if file_id in s:
                s.discard(file_id)
                self._refresh(node, t, s)

    def on_evict(self, node: int, file_id: str) -> None:
        """``file_id`` left ``node``'s cache (eviction or disk loss)."""
        readers = self.readers.get(node)
        if readers is None:
            return
        for t in readers.get(file_id, ()):
            if t.task_id in self.done:
                continue
            s = self.miss[node][t.task_id]
            if file_id not in s:
                s.add(file_id)
                self._refresh(node, t, s)

    def task_done(self, task_id: str) -> None:
        self.done.add(task_id)

    def drop_node(self, node: int) -> None:
        self.miss.pop(node, None)
        self.mb.pop(node, None)
        self.readers.pop(node, None)


class Runtime:
    """The Section 6 execution engine over one persistent set of Gantt charts.

    One ``Runtime`` lives for a whole batch run; sub-batches are executed
    sequentially through :meth:`execute`, each starting at the previous
    makespan (the driver applies eviction between them).

    ``reference=True`` disables every hot-path cache (source memoisation,
    hoisted bandwidths, the missing-bytes index, the cached eviction order,
    execution-duration memos) and runs the original from-scratch scans.
    Both flavours are decision-identical — the reference path exists as the
    oracle for differential tests and `repro bench`.
    """

    def __init__(
        self,
        platform: Platform,
        state: ClusterState,
        allow_replication: bool = True,
        candidate_limit: int | None = None,
        ordering: str = "ect",
        overlap_io_compute: bool = False,
        audit: bool = False,
        faults: FaultModel | None = None,
        reference: bool = False,
    ) -> None:
        if ordering not in ("ect", "fifo"):
            raise ValueError(f"ordering must be 'ect' or 'fifo', got {ordering!r}")
        self.platform = platform
        self.state = state
        self.allow_replication = allow_replication
        self.candidate_limit = candidate_limit
        self.ordering = ordering
        # The paper assumes no file is staged on a node while a task runs
        # there (Eq. 12): port and CPU share one timeline. Setting
        # ``overlap_io_compute`` relaxes that (a future-work ablation):
        # execution moves to a dedicated per-node CPU timeline so staging
        # for the next task can proceed during computation.
        self.overlap_io_compute = overlap_io_compute
        self.reference = reference
        self.clock: Seconds = 0.0
        self.node_tl = [Timeline(f"compute{i}") for i in range(platform.num_compute)]
        self.cpu_tl = (
            [Timeline(f"cpu{i}") for i in range(platform.num_compute)]
            if overlap_io_compute
            else None
        )
        self.storage_tl = [
            Timeline(f"storage{s}") for s in range(platform.num_storage)
        ]
        self.link_tl = (
            Timeline("shared-link") if platform.shared_link_bw is not None else None
        )
        # (node, file) -> absolute time the copy becomes usable
        self._avail: dict[tuple[int, str], float] = {}
        # -- hot-path caches (all bypassed when ``reference`` is set) --------
        # Remote bandwidth per storage node: a pure function of the platform,
        # hoisted out of the per-transfer inner loop.
        self._remote_bw = [
            platform.remote_bandwidth(s) for s in range(platform.num_storage)
        ]
        # (file, dest) -> (holders snapshot, source list). Valid while the
        # state still hands out the *same* holders frozenset (identity check);
        # any replication/eviction/crash of the file drops that snapshot.
        self._src_memo: dict[
            tuple[str, int], tuple[frozenset[int], list[tuple[str, int | None]]]
        ] = {}
        # (task, node) -> execution duration (local reads + CPU): pure in the
        # platform and the immutable file catalog.
        self._exec_dur: dict[tuple[str, int], float] = {}
        # node -> (cache.mutations stamp, size-ascending resident files)
        self._vorder: dict[int, tuple[int, list[str]]] = {}
        # Missing-bytes index of the sub-batch being executed (None outside
        # `execute` and on the reference / unlimited-candidates paths).
        self._mindex: _MissingIndex | None = None
        # Fault injection (None = the null model: the exact fault-free code
        # paths run and traces are bit-identical to a faultless build).
        self.faults = faults
        # (file, dest) -> completed staging sessions, so repeated stagings
        # of the same file draw fresh failure outcomes. Only advanced at
        # commit time, keeping speculative ECT evaluations consistent.
        self._xfer_instance: dict[tuple[str, int], int] = {}
        # Commit-ordered event log for the schedule auditor
        # (repro.analysis.audit); None keeps the hot path allocation-free.
        self.trail: AuditTrail | None = None
        if audit:
            self.trail = AuditTrail(
                initial_holdings={
                    n: {f: state.size_of(f) for f in state.files_on(n)}
                    for n in range(platform.num_compute)
                    if state.files_on(n)
                }
            )
        # Simulated-time series probe (repro.obs.timeseries), assigned by
        # the driver when run_batch(timeseries=...) is enabled. None keeps
        # every hook a single attribute test: the disabled path allocates
        # nothing, mirroring the null audit trail above.
        self.probe: TimeSeriesProbe | None = None
        # Ready-task depth of the sub-batch currently executing (tasks
        # mapped but not yet committed); maintained unconditionally so the
        # probe's ready-queue gauge costs only integer arithmetic.
        self._ready_count: int = 0

    # -- resource helpers -------------------------------------------------------
    def _key(self, tl: Timeline) -> str:
        return tl.name

    def _overlay(self, overlays: dict[str, Overlay], tl: Timeline) -> Overlay:
        key = self._key(tl)
        if key not in overlays:
            overlays[key] = Overlay(tl)
        return overlays[key]

    def _avail_time(self, node: int, file_id: str) -> Seconds:
        return self._avail.get((node, file_id), self.clock)

    # -- source enumeration --------------------------------------------------------
    def _dynamic_sources(
        self, file_id: str, dest: int
    ) -> list[tuple[str, int | None]]:
        """All places ``file_id`` can come from: ``(kind, source_node)``.

        The optimised path memoises the list per ``(file, dest)``, keyed on
        the *identity* of the holders snapshot: :meth:`ClusterState.holders`
        returns one cached frozenset until the holder set mutates, so
        ``hit is holders`` proves nothing changed since the memo was built
        and the same enumeration (frozenset order is content-determined)
        would be rebuilt anyway.
        """
        if self.reference:
            sources: list[tuple[str, int | None]] = [("remote", None)]
            if self.allow_replication:
                for holder in self.state.holders(file_id):
                    if holder != dest:
                        sources.append(("replica", holder))
            return sources
        holders = self.state.holders(file_id)
        key = (file_id, dest)
        hit = self._src_memo.get(key)
        if hit is not None and hit[0] is holders:
            return hit[1]
        sources = [("remote", None)]
        if self.allow_replication:
            for holder in holders:
                if holder != dest:
                    sources.append(("replica", holder))
        self._src_memo[key] = (holders, sources)
        return sources

    def _sources_for(
        self, file_id: str, dest: int, plan: StagingPlan | None
    ) -> list[tuple[str, int | None]]:
        if plan is not None:
            planned = plan.sources.get((file_id, dest))
            if planned is not None:
                if planned.kind == "remote":
                    return [("remote", None)]
                src = planned.source_node
                assert src is not None
                if self.state.has_file(src, file_id):
                    return [("replica", src)]
                # Planned replica source lost (evicted): dynamic fallback.
        return self._dynamic_sources(file_id, dest)

    # -- transfer timing ------------------------------------------------------------
    def _transfer_resources(
        self, kind: str, source_node: int | None, dest: int, file_id: str,
        overlays: dict[str, Overlay],
    ) -> tuple[list[Overlay], float, Seconds]:
        """Overlays involved in a transfer, its bandwidth and earliest start."""
        dest_ov = self._overlay(overlays, self.node_tl[dest])
        if kind == "remote":
            storage = self.state.storage_node_of(file_id)
            res = [dest_ov, self._overlay(overlays, self.storage_tl[storage])]
            if self.link_tl is not None:
                res.append(self._overlay(overlays, self.link_tl))
            bw = (
                self.platform.remote_bandwidth(storage)
                if self.reference
                else self._remote_bw[storage]
            )
            ready = self.clock
        else:
            assert source_node is not None
            res = [dest_ov, self._overlay(overlays, self.node_tl[source_node])]
            bw = self.platform.replication_bandwidth
            ready = self._avail_time(source_node, file_id)
        return res, bw, ready

    # -- fault-aware source selection ---------------------------------------------------
    def _best_source(
        self,
        file_id: str,
        node: int,
        plan: StagingPlan | None,
        overlays: dict[str, Overlay],
        floor: Seconds,
        exclude: frozenset[tuple[str, int | None]] = frozenset(),
    ) -> tuple[float, str, int | None, float, float, list[Overlay]] | None:
        """Min-TCT source for one transfer under the active fault model.

        Returns ``(tct, kind, source, start, duration, resources)`` or
        ``None`` when every candidate is excluded or crash-unreachable.
        Only called when ``self.faults`` is set; the fault-free path keeps
        its original inline loop untouched.
        """
        faults = self.faults
        assert faults is not None
        size = self.state.size_of(file_id)
        best: tuple[float, str, int | None, float, float, list[Overlay]] | None = None
        for kind, src in self._sources_for(file_id, node, plan):
            if (kind, src) in exclude:
                continue
            res, bw, ready = self._transfer_resources(
                kind, src, node, file_id, overlays
            )
            not_before = max(floor, ready)
            # Link slowdown windows divide bandwidth; the factor is sampled
            # at the transfer's earliest possible start (deterministic even
            # though the actual slot may land later).
            duration = size * faults.slowdown_factor(kind, not_before) / bw
            start = earliest_common_slot(res, duration, not_before)
            if kind == "replica":
                assert src is not None
                if start + duration > faults.crash_time(src):
                    continue  # source node dies mid-copy: not a usable source
            tct = start + duration
            if best is None or tct < best[0]:
                best = (tct, kind, src, start, duration, res)
        return best

    def _stage_with_faults(
        self,
        task: Task,
        node: int,
        plan: StagingPlan | None,
        overlays: dict[str, Overlay],
        missing: list[str],
    ) -> tuple[
        list[tuple[str, str, int | None, float, float]],
        float,
        list[tuple[str, float, str, int | None, float, float, int]],
    ]:
        """Stage ``missing`` files with retry/backoff and source failover.

        Files are still picked in minimum-first-attempt-TCT order (the
        paper's rule); each file's staging session then runs attempts until
        one succeeds: a failed attempt occupies its slot (tagged
        ``xfail:``), the next attempt starts after an exponential backoff
        and prefers the next-cheapest source not yet tried this session
        (falling back to retrying exhausted sources). Draw outcomes are
        pure functions of ``(seed, file, dest, instance, attempt)`` so this
        speculative evaluation matches the eventual commit exactly.
        """
        faults = self.faults
        assert faults is not None
        transfers: list[tuple[str, str, int | None, float, float]] = []
        failed: list[tuple[str, float, str, int | None, float, float, int]] = []
        transfers_done = self.clock
        remaining = list(missing)
        while remaining:
            pick: tuple[float, str] | None = None
            for f in remaining:
                opt = self._best_source(f, node, plan, overlays, self.clock)
                if opt is None:  # planned source unusable: dynamic fallback
                    opt = self._best_source(f, node, None, overlays, self.clock)
                assert opt is not None  # the storage cluster never crashes
                if pick is None or opt[0] < pick[0]:
                    pick = (opt[0], f)
            assert pick is not None
            f = pick[1]
            size = self.state.size_of(f)
            instance = self._xfer_instance.get((f, node), 0)
            floor = self.clock
            tried: set[tuple[str, int | None]] = set()
            attempt = 0
            while True:
                opt = self._best_source(
                    f, node, plan, overlays, floor, frozenset(tried)
                )
                if opt is None:
                    tried.clear()  # every source tried: cycle through again
                    opt = self._best_source(f, node, plan, overlays, floor)
                if opt is None:
                    opt = self._best_source(f, node, None, overlays, floor)
                assert opt is not None
                tct, kind, src, start, duration, res = opt
                if faults.transfer_fails(f, node, instance, attempt):
                    for ov in res:
                        ov.reserve(start, duration, tag=f"xfail:{f}->{node}")
                    failed.append(
                        (f, size, kind, src, start, start + duration, attempt)
                    )
                    tried.add((kind, src))
                    floor = start + duration + faults.backoff(attempt)
                    attempt += 1
                    continue
                for ov in res:
                    ov.reserve(start, duration, tag=f"xfer:{f}->{node}")
                transfers.append((f, kind, src, start, duration))
                transfers_done = max(transfers_done, tct)
                break
            remaining.remove(f)
        return transfers, transfers_done, failed

    # -- tentative evaluation (ECT) ---------------------------------------------------
    def evaluate(
        self, task: Task, node: int, plan: StagingPlan | None = None
    ) -> _Tentative:
        """Tentatively schedule ``task`` on ``node``; nothing is committed."""
        overlays: dict[str, Overlay] = {}
        missing = [f for f in task.files if not self.state.has_file(node, f)]
        present_avail = [
            self._avail_time(node, f) for f in task.files if f not in missing
        ]
        transfers: list[tuple[str, str, int | None, float, float]] = []
        transfers_done = max(present_avail, default=self.clock)
        failed_attempts: list[
            tuple[str, float, str, int | None, float, float, int]
        ] = []

        if self.faults is not None:
            transfers, staged_done, failed_attempts = self._stage_with_faults(
                task, node, plan, overlays, missing
            )
            transfers_done = max(transfers_done, staged_done)
        else:
            remaining = list(missing)
            while remaining:
                best = None  # (tct, file, kind, src, start, duration, resources)
                for f in remaining:
                    size = self.state.size_of(f)
                    for kind, src in self._sources_for(f, node, plan):
                        res, bw, ready = self._transfer_resources(
                            kind, src, node, f, overlays
                        )
                        duration = size / bw
                        start = earliest_common_slot(
                            res, duration, max(self.clock, ready)
                        )
                        tct = start + duration
                        if best is None or tct < best[0]:
                            best = (tct, f, kind, src, start, duration, res)
                assert best is not None
                tct, f, kind, src, start, duration, res = best
                for ov in res:
                    ov.reserve(start, duration, tag=f"xfer:{f}->{node}")
                transfers.append((f, kind, src, start, duration))
                transfers_done = max(transfers_done, tct)
                remaining.remove(f)

        # Execution: local read of all inputs plus CPU time, after every
        # input file is available. Runs on the node timeline (port + CPU
        # mutually exclusive, the paper's model) or on the dedicated CPU
        # timeline in overlap mode. The duration is pure in the platform
        # and the immutable file catalog, so it is memoised per
        # (task, node); the memo stores the float the reference expression
        # produced on first evaluation.
        exec_key = (task.task_id, node)
        exec_dur = (
            None if self.reference else self._exec_dur.get(exec_key)
        )
        if exec_dur is None:
            read = sum(
                self.platform.local_read_time(node, self.state.size_of(f))
                for f in task.files
            )
            exec_dur = read + self.platform.task_compute_time(
                node, task.compute_time
            )
            if not self.reference:
                self._exec_dur[exec_key] = exec_dur
        exec_tl = (
            self.cpu_tl[node] if self.cpu_tl is not None else self.node_tl[node]
        )
        dest_ov = self._overlay(overlays, exec_tl)
        exec_start = dest_ov.earliest_slot(
            exec_dur, max(transfers_done, self.clock)
        )
        dest_ov.reserve(exec_start, exec_dur, tag=f"exec:{task.task_id}")
        return _Tentative(
            task=task,
            node=node,
            overlays=overlays,
            transfers=transfers,
            transfers_done=transfers_done,
            exec_start=exec_start,
            ect=exec_start + exec_dur,
            failed_attempts=failed_attempts,
        )

    # -- committing ---------------------------------------------------------------------
    def _commit(
        self,
        tent: _Tentative,
        victim_order: Callable[[int, Iterable[str]], list[str]],
    ) -> TaskRecord:
        """Write a tentative schedule through to the real Gantt charts."""
        node = tent.node
        cache = self.state.caches[node]

        # Pin the already-present inputs first so on-demand eviction cannot
        # take files this task is about to use. Each such input is an access
        # served by the disk cache rather than a transfer.
        incoming_ids = {f for f, *_ in tent.transfers}
        for f in tent.task.files:
            if f not in incoming_ids:
                cache.pin(f)
                size = self.state.size_of(f)
                carried = self.state.record_cache_hit(size, node, f)
                if self.trail is not None and self.state.carryover_active:
                    # Online sessions only: log every hit with its
                    # cross-batch attribution so the auditor's E8 replay
                    # can verify it; single-batch trails stay unchanged.
                    self.trail.record_cache_hit(node, f, size, carried)

        # Make room for the incoming files, evicting per policy.
        needed = sum(self.state.size_of(f) for f in incoming_ids)
        if needed > 0:
            cache.ensure_space(
                needed,
                victim_order=lambda cands: victim_order(node, cands),
                on_evict=lambda fid: self._on_evict(node, fid),
            )

        for ov in tent.overlays.values():
            ov.commit()
        if self.faults is not None:
            self._commit_fault_accounting(tent)
        for f, kind, src, start, duration in tent.transfers:
            size = self.state.size_of(f)
            self.state.place(node, f, now=start + duration)
            if self._mindex is not None:
                self._mindex.on_place(node, f)
            self._avail[(node, f)] = start + duration
            cache.pin(f)
            if kind == "remote":
                self.state.record_remote(size)
            else:
                self.state.record_replication(size)
            if self.trail is not None:
                self.trail.record_transfer(
                    f, size, kind, src, node, start, start + duration
                )
        for f in tent.task.files:
            cache.touch(f, tent.ect)
        if self.trail is not None:
            self.trail.record_exec(
                tent.task.task_id, node, tuple(tent.task.files),
                tent.exec_start, tent.ect,
            )
        if self.probe is not None:
            self.probe.on_commit(self, tent)
        return TaskRecord(
            task_id=tent.task.task_id,
            node=node,
            transfers_done=tent.transfers_done,
            exec_start=tent.exec_start,
            completion=tent.ect,
        )

    def _commit_fault_accounting(self, tent: _Tentative) -> None:
        """Fold a committed task's fault history into stats and the trail.

        Runs at commit time only, so speculative evaluations never touch
        counters. Failed attempts are recorded before their file's
        successful transfer, preserving E7's "failure then recovery" order
        in the commit sequence.
        """
        faults = self.faults
        assert faults is not None
        node = tent.node
        for f, _kind, _src, _start, _duration in tent.transfers:
            self._xfer_instance[(f, node)] = (
                self._xfer_instance.get((f, node), 0) + 1
            )
        if not tent.failed_attempts:
            return
        chains: dict[str, list[tuple[str, float, str, int | None, float, float, int]]] = {}
        for fa in tent.failed_attempts:
            chains.setdefault(fa[0], []).append(fa)
        success_source = {
            f: (kind, src) for f, kind, src, _start, _duration in tent.transfers
        }
        stats = faults.stats
        for f, fails in chains.items():
            fails.sort(key=lambda fa: fa[6])
            stats.transfer_failures += len(fails)
            stats.retries += len(fails)
            sources = [(fa[2], fa[3]) for fa in fails] + [success_source[f]]
            stats.failovers += sum(
                1 for a, b in zip(sources, sources[1:]) if a != b
            )
            if self.trail is not None:
                for file_id, size, kind, src, start, end, attempt in fails:
                    self.trail.record_failed_transfer(
                        file_id, size, kind, src, node, start, end, attempt
                    )
            if self.probe is not None:
                self.probe.on_retry(node, f, fails[0][4], len(fails))

    def _on_evict(self, node: int, file_id: str) -> None:
        # ensure_space has already dropped the cache entry; mirror the global
        # holder map, availability table and statistics.
        if self.trail is not None:
            self.trail.record_eviction(node, file_id, self.state.size_of(file_id))
        self.state.note_evicted(node, file_id)
        self._avail.pop((node, file_id), None)
        if self._mindex is not None:
            self._mindex.on_evict(node, file_id)
        if self.probe is not None:
            self.probe.on_evict(node, self.state.size_of(file_id))

    def _size_ascending(self, node: int, cands: Iterable[str]) -> list[str]:
        """Default eviction order: smallest candidate files first.

        Equivalent to ``sorted(cands, key=size_of)``: the candidate list the
        cache passes in is a subsequence of its insertion order with
        distinct elements, so filtering the (stable) size-sorted order of
        *all* resident files down to the candidate set yields the same
        sequence as stable-sorting the candidates directly. The full order
        is cached per node and revalidated against the cache's membership
        mutation counter instead of being rebuilt per eviction query.
        """
        cache = self.state.caches[node]
        stamp = cache.mutations
        entry = self._vorder.get(node)
        if entry is None or entry[0] != stamp:
            order = sorted(cache.files, key=self.state.size_of)
            self._vorder[node] = (stamp, order)
        else:
            order = entry[1]
        cs = set(cands)
        return [f for f in order if f in cs]

    def _release(self, task: Task, node: int) -> None:
        if self.faults is not None and node in self.state.dead_nodes:
            return  # the node's cache died with it; nothing left to unpin
        cache = self.state.caches[node]
        for f in task.files:
            cache.unpin(f)

    # -- fault application --------------------------------------------------------------
    def _kill_node(self, node: int, time: Seconds) -> None:
        """Permanently fail ``node``: drop its cache and log the crash."""
        faults = self.faults
        assert faults is not None
        lost = self.state.mark_dead(node)
        faults.stats.node_crashes += 1
        faults.stats.files_lost += len(lost)
        faults.stats.lost_mb += sum(size for _, size in lost)
        for key in [k for k in self._avail if k[0] == node]:
            del self._avail[key]
        if self._mindex is not None:
            self._mindex.drop_node(node)
        if self.trail is not None:
            self.trail.record_crash(node, time, tuple(lost))
        if self.probe is not None:
            self.probe.on_crash(node, time, len(lost))

    def _apply_timed_faults(
        self, victim_order: Callable[[int, Iterable[str]], list[str]]
    ) -> None:
        """Inject faults whose simulated time has already passed.

        Called at every :meth:`execute` entry: crashes and disk losses
        scheduled before the current clock take effect between sub-batches
        (mid-sub-batch crashes are caught by the commit-time guard in the
        main loop instead).
        """
        faults = self.faults
        assert faults is not None
        for idx, loss in enumerate(faults.spec.disk_losses):
            # Applied-loss dedup lives on the fault model, not the runtime:
            # online sessions share one model across per-batch runtimes, so
            # each injected loss shrinks a disk exactly once per stream.
            if idx in faults.applied_disk_losses or loss.time > self.clock:
                continue
            faults.applied_disk_losses.add(idx)
            if (
                loss.node in self.state.dead_nodes
                or not 0 <= loss.node < self.platform.num_compute
            ):
                continue
            node = loss.node
            self.state.caches[node].shrink(
                loss.lost_mb,
                victim_order=lambda cands: victim_order(node, cands),
                on_evict=lambda fid: self._on_evict(node, fid),
            )
            faults.stats.disk_losses += 1
        for node in range(self.platform.num_compute):
            if node in self.state.dead_nodes:
                continue
            crash_at = faults.crash_time(node)
            if crash_at <= self.clock:
                self._kill_node(node, crash_at)

    # -- proactive pushes (Data Least Loaded) ------------------------------------------
    def _stage_push(self, file_id: str, dest: int,
                    victim_order: Callable[[int, Iterable[str]], list[str]]) -> None:
        """Proactively replicate ``file_id`` onto ``dest`` (DLL baseline)."""
        if self.state.has_file(dest, file_id):
            return
        if self.faults is not None and dest in self.state.dead_nodes:
            return  # dead destination: the push is silently skipped
        size = self.state.size_of(file_id)
        cache = self.state.caches[dest]
        try:
            cache.ensure_space(
                size,
                victim_order=lambda cands: victim_order(dest, cands),
                on_evict=lambda fid: self._on_evict(dest, fid),
            )
        except CacheFullError:
            return  # skip the push rather than fail the run
        best = None
        overlays: dict[str, Overlay] = {}
        for kind, src in self._dynamic_sources(file_id, dest):
            res, bw, ready = self._transfer_resources(
                kind, src, dest, file_id, overlays
            )
            not_before = max(self.clock, ready)
            duration = size / bw
            if self.faults is not None:
                duration = (
                    size * self.faults.slowdown_factor(kind, not_before) / bw
                )
            start = earliest_common_slot(res, duration, not_before)
            if (
                self.faults is not None
                and kind == "replica"
                and src is not None
                and start + duration > self.faults.crash_time(src)
            ):
                continue  # source dies mid-copy
            if best is None or start + duration < best[0]:
                best = (start + duration, kind, src, start, duration, res)
        assert best is not None
        tct, kind, src, start, duration, res = best
        if self.faults is not None and tct > self.faults.crash_time(dest):
            return  # push would outlive the destination: skip it
        for ov in res:
            ov.reserve(start, duration, tag=f"push:{file_id}->{dest}")
        for ov in overlays.values():
            ov.commit()
        self.state.place(dest, file_id, now=tct)
        self._avail[(dest, file_id)] = tct
        if kind == "remote":
            self.state.record_remote(size)
        else:
            self.state.record_replication(size)
        if self.trail is not None:
            self.trail.record_transfer(
                file_id, size, kind, src, dest, start, tct, push=True
            )
        if self.probe is not None:
            self.probe.on_push(self, dest, kind, src, start, tct)

    # -- main loop ---------------------------------------------------------------------
    def execute(
        self,
        tasks: Sequence[Task],
        mapping: Mapping[str, int],
        plan: StagingPlan | None = None,
        victim_order: Callable[[int, Iterable[str]], list[str]] | None = None,
    ) -> ExecutionResult:
        """Execute a sub-batch; returns timings and advances the clock.

        ``mapping`` sends every task id to a compute node. ``victim_order``
        ranks eviction candidates (most evictable first) for on-demand cache
        eviction; default is size-ascending.
        """
        if victim_order is None:
            if self.reference:

                def _size_ascending(node: int, cands: Iterable[str]) -> list[str]:
                    return sorted(cands, key=lambda f: self.state.size_of(f))

                victim_order = _size_ascending
            else:
                victim_order = self._size_ascending

        start_time = self.clock
        failed: list[str] = []
        if self.faults is not None:
            self._apply_timed_faults(victim_order)
        for t in tasks:
            if t.task_id not in mapping:
                raise ValueError(f"task {t.task_id} missing from mapping")
            n = mapping[t.task_id]
            if not 0 <= n < self.platform.num_compute:
                raise ValueError(f"task {t.task_id} mapped to bad node {n}")
        self._ready_count = len(tasks)

        if plan is not None:
            for file_id, dest in plan.pushes:
                self._stage_push(file_id, dest, victim_order)

        groups: dict[int, list[Task]] = {}
        for t in tasks:
            groups.setdefault(mapping[t.task_id], []).append(t)

        if self.faults is not None:
            # Tasks mapped onto an already-dead node cannot run at all;
            # hand them straight back to the driver for rescheduling.
            for node in [n for n in groups if n in self.state.dead_nodes]:
                failed.extend(t.task_id for t in groups.pop(node))
        self._ready_count = sum(len(g) for g in groups.values())

        base_stats = replace(self.state.stats)

        # Candidate pre-filter index: built after pushes and dead-group
        # removal so it sees the same placement state the reference scan
        # would; kept current by the _commit/_on_evict/_kill_node hooks.
        self._mindex = None
        if (
            not self.reference
            and self.candidate_limit is not None
            and self.ordering == "ect"
        ):
            self._mindex = _MissingIndex(self.state, groups)

        records: list[TaskRecord] = []
        events: list[tuple[float, int, int, Task]] = []  # (ect, seq, node, task)
        seq = 0

        def candidates(node: int) -> list[Task]:
            pend = groups[node]
            if self.ordering == "fifo":
                return pend[:1]  # ablation mode: submission order, no ECT scan
            if self.candidate_limit is None or len(pend) <= self.candidate_limit:
                return pend
            # Cheap pre-filter: tasks needing the least missing volume first.
            mindex = self._mindex
            if mindex is not None:
                mb = mindex.mb[node]
                return sorted(pend, key=lambda t: mb[t.task_id])[
                    : self.candidate_limit
                ]
            def missing_mb(t: Task) -> MB:
                return sum(
                    self.state.size_of(f)
                    for f in t.files
                    if not self.state.has_file(node, f)
                )
            return sorted(pend, key=missing_mb)[: self.candidate_limit]

        def best_of(node: int) -> _Tentative:
            tents = [self.evaluate(t, node, plan) for t in candidates(node)]
            return min(tents, key=lambda x: x.ect)

        def commit_next(node: int) -> None:
            nonlocal seq
            tent = best_of(node)
            if self.faults is not None and tent.ect > self.faults.crash_time(node):
                # The node dies before its next-best task could complete:
                # declare it crashed now. Everything already committed here
                # finished before the crash instant (each commit passed this
                # same guard), so E6 holds; the unfinished remainder of the
                # group goes back to the driver's pending pool.
                self._kill_node(node, self.faults.crash_time(node))
                dropped = groups.pop(node)
                failed.extend(t.task_id for t in dropped)
                self._ready_count -= len(dropped)
                return
            groups[node].remove(tent.task)
            self._ready_count -= 1
            if not groups[node]:
                del groups[node]
            if self._mindex is not None:
                self._mindex.task_done(tent.task.task_id)
            records.append(self._commit(tent, victim_order))
            heapq.heappush(events, (tent.ect, seq, node, tent.task))
            seq += 1

        # Initial commits: globally best first, then each remaining group's
        # best in ECT order (re-evaluated after every commit).
        uncommitted = set(groups)
        while uncommitted:
            best_node = None
            best_ect = float("inf")
            for node in uncommitted:
                tent = best_of(node)
                if tent.ect < best_ect:
                    best_node, best_ect = node, tent.ect
            assert best_node is not None
            commit_next(best_node)
            uncommitted.discard(best_node)
            uncommitted &= set(groups)

        # Event loop: when a task completes, schedule that group's next task.
        makespan = start_time
        while events:
            ect, _, node, task = heapq.heappop(events)
            makespan = max(makespan, ect)
            self._release(task, node)
            if node in groups:
                commit_next(node)

        self.clock = max(self.clock, makespan)
        self._mindex = None
        delta = TransferStats(
            self.state.stats.remote_transfers - base_stats.remote_transfers,
            self.state.stats.remote_volume_mb - base_stats.remote_volume_mb,
            self.state.stats.replications - base_stats.replications,
            self.state.stats.replication_volume_mb
            - base_stats.replication_volume_mb,
            self.state.stats.evictions - base_stats.evictions,
            self.state.stats.evicted_volume_mb - base_stats.evicted_volume_mb,
            self.state.stats.cache_hits - base_stats.cache_hits,
            self.state.stats.cache_hit_volume_mb - base_stats.cache_hit_volume_mb,
            self.state.stats.cross_batch_hits - base_stats.cross_batch_hits,
            self.state.stats.cross_batch_hit_volume_mb
            - base_stats.cross_batch_hit_volume_mb,
        )
        return ExecutionResult(
            start_time=start_time,
            makespan=makespan,
            records=records,
            stats=delta,
            failed_tasks=failed,
        )
