"""Dynamic task ordering and file staging — Section 6 of the paper.

Given a mapping of tasks onto compute nodes (from any scheduler), this engine
decides *when* tasks run and *where* each file transfer comes from, by
maintaining Gantt charts for every storage node, compute node and the shared
inter-cluster link (when present):

* Tasks assigned to a node form a *group*; within each group the next task is
  the one with the least *earliest completion time* (ECT), evaluated against
  the current Gantt charts.
* A task's ECT is found by tentatively scheduling its missing file transfers
  one by one, always picking the file with the minimum transfer completion
  time (TCT) over all its possible sources (the storage node holding it, or
  any compute node that has a replica), then placing its execution (local
  read + CPU) after the last transfer.
* Initially the globally best task is committed first, then the best task of
  every other group (re-evaluated after each commit); afterwards, whenever a
  task completes, the next-best task from its group is committed — exactly
  the policy described in the paper.

Single-port model: a transfer occupies both endpoints' timelines; a compute
node's timeline also carries task execution, so no file is staged on a node
while a task executes there (the paper's non-overlap assumption, Eq. 12).

When an IP transfer plan is supplied, source selection follows the plan
instead of the dynamic minimum-TCT rule (with a dynamic fallback if the
planned source no longer holds the file), mirroring the paper's "minor
modification" for realising the IP solution at run time.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field, replace

from ..batch import Task
from .cache import CacheFullError
from .events import AuditTrail
from .gantt import Overlay, Timeline, earliest_common_slot
from .platform import Platform
from .state import ClusterState, TransferStats
from .stats import ExecutionResult, TaskRecord

__all__ = ["PlannedSource", "StagingPlan", "Runtime"]


@dataclass(frozen=True)
class PlannedSource:
    """A transfer source fixed by the IP solution.

    ``kind`` is ``"remote"`` (from the storage cluster) or ``"replica"``
    (from compute node ``source_node``).
    """

    kind: str
    source_node: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("remote", "replica"):
            raise ValueError(f"bad source kind {self.kind!r}")
        if self.kind == "replica" and self.source_node is None:
            raise ValueError("replica source requires source_node")


@dataclass
class StagingPlan:
    """Static staging decisions attached to a sub-batch mapping.

    ``sources`` fixes the source for (file, destination-node) pairs (IP
    scheduler). ``pushes`` are proactive transfers executed before the tasks
    start (the Data-Least-Loaded replications of the JDP baseline).
    """

    sources: dict[tuple[str, int], PlannedSource] = field(default_factory=dict)
    pushes: list[tuple[str, int]] = field(default_factory=list)


@dataclass
class _Tentative:
    """A tentatively scheduled task: its transfers and execution slot."""

    task: Task
    node: int
    overlays: dict[str, Overlay]
    transfers: list[tuple[str, str, int | None, float, float]]
    # (file_id, kind, source_node, start, duration)
    transfers_done: float
    exec_start: float
    ect: float


class Runtime:
    """The Section 6 execution engine over one persistent set of Gantt charts.

    One ``Runtime`` lives for a whole batch run; sub-batches are executed
    sequentially through :meth:`execute`, each starting at the previous
    makespan (the driver applies eviction between them).
    """

    def __init__(
        self,
        platform: Platform,
        state: ClusterState,
        allow_replication: bool = True,
        candidate_limit: int | None = None,
        ordering: str = "ect",
        overlap_io_compute: bool = False,
        audit: bool = False,
    ) -> None:
        if ordering not in ("ect", "fifo"):
            raise ValueError(f"ordering must be 'ect' or 'fifo', got {ordering!r}")
        self.platform = platform
        self.state = state
        self.allow_replication = allow_replication
        self.candidate_limit = candidate_limit
        self.ordering = ordering
        # The paper assumes no file is staged on a node while a task runs
        # there (Eq. 12): port and CPU share one timeline. Setting
        # ``overlap_io_compute`` relaxes that (a future-work ablation):
        # execution moves to a dedicated per-node CPU timeline so staging
        # for the next task can proceed during computation.
        self.overlap_io_compute = overlap_io_compute
        self.clock = 0.0
        self.node_tl = [Timeline(f"compute{i}") for i in range(platform.num_compute)]
        self.cpu_tl = (
            [Timeline(f"cpu{i}") for i in range(platform.num_compute)]
            if overlap_io_compute
            else None
        )
        self.storage_tl = [
            Timeline(f"storage{s}") for s in range(platform.num_storage)
        ]
        self.link_tl = (
            Timeline("shared-link") if platform.shared_link_bw is not None else None
        )
        # (node, file) -> absolute time the copy becomes usable
        self._avail: dict[tuple[int, str], float] = {}
        # Commit-ordered event log for the schedule auditor
        # (repro.analysis.audit); None keeps the hot path allocation-free.
        self.trail: AuditTrail | None = None
        if audit:
            self.trail = AuditTrail(
                initial_holdings={
                    n: {f: state.size_of(f) for f in state.files_on(n)}
                    for n in range(platform.num_compute)
                    if state.files_on(n)
                }
            )

    # -- resource helpers -------------------------------------------------------
    def _key(self, tl: Timeline) -> str:
        return tl.name

    def _overlay(self, overlays: dict[str, Overlay], tl: Timeline) -> Overlay:
        key = self._key(tl)
        if key not in overlays:
            overlays[key] = Overlay(tl)
        return overlays[key]

    def _avail_time(self, node: int, file_id: str) -> float:
        return self._avail.get((node, file_id), self.clock)

    # -- source enumeration --------------------------------------------------------
    def _dynamic_sources(
        self, file_id: str, dest: int
    ) -> list[tuple[str, int | None]]:
        """All places ``file_id`` can come from: ``(kind, source_node)``."""
        sources: list[tuple[str, int | None]] = [("remote", None)]
        if self.allow_replication:
            for holder in self.state.holders(file_id):
                if holder != dest:
                    sources.append(("replica", holder))
        return sources

    def _sources_for(
        self, file_id: str, dest: int, plan: StagingPlan | None
    ) -> list[tuple[str, int | None]]:
        if plan is not None:
            planned = plan.sources.get((file_id, dest))
            if planned is not None:
                if planned.kind == "remote":
                    return [("remote", None)]
                src = planned.source_node
                assert src is not None
                if self.state.has_file(src, file_id):
                    return [("replica", src)]
                # Planned replica source lost (evicted): dynamic fallback.
        return self._dynamic_sources(file_id, dest)

    # -- transfer timing ------------------------------------------------------------
    def _transfer_resources(
        self, kind: str, source_node: int | None, dest: int, file_id: str,
        overlays: dict[str, Overlay],
    ) -> tuple[list[Overlay], float, float]:
        """Overlays involved in a transfer, its bandwidth and earliest start."""
        dest_ov = self._overlay(overlays, self.node_tl[dest])
        if kind == "remote":
            storage = self.state.storage_node_of(file_id)
            res = [dest_ov, self._overlay(overlays, self.storage_tl[storage])]
            if self.link_tl is not None:
                res.append(self._overlay(overlays, self.link_tl))
            bw = self.platform.remote_bandwidth(storage)
            ready = self.clock
        else:
            assert source_node is not None
            res = [dest_ov, self._overlay(overlays, self.node_tl[source_node])]
            bw = self.platform.replication_bandwidth
            ready = self._avail_time(source_node, file_id)
        return res, bw, ready

    # -- tentative evaluation (ECT) ---------------------------------------------------
    def evaluate(
        self, task: Task, node: int, plan: StagingPlan | None = None
    ) -> _Tentative:
        """Tentatively schedule ``task`` on ``node``; nothing is committed."""
        overlays: dict[str, Overlay] = {}
        missing = [f for f in task.files if not self.state.has_file(node, f)]
        present_avail = [
            self._avail_time(node, f) for f in task.files if f not in missing
        ]
        transfers: list[tuple[str, str, int | None, float, float]] = []
        transfers_done = max(present_avail, default=self.clock)

        remaining = list(missing)
        while remaining:
            best = None  # (tct, file, kind, src, start, duration, resources)
            for f in remaining:
                size = self.state.size_of(f)
                for kind, src in self._sources_for(f, node, plan):
                    res, bw, ready = self._transfer_resources(
                        kind, src, node, f, overlays
                    )
                    duration = size / bw
                    start = earliest_common_slot(
                        res, duration, max(self.clock, ready)
                    )
                    tct = start + duration
                    if best is None or tct < best[0]:
                        best = (tct, f, kind, src, start, duration, res)
            assert best is not None
            tct, f, kind, src, start, duration, res = best
            for ov in res:
                ov.reserve(start, duration, tag=f"xfer:{f}->{node}")
            transfers.append((f, kind, src, start, duration))
            transfers_done = max(transfers_done, tct)
            remaining.remove(f)

        # Execution: local read of all inputs plus CPU time, after every
        # input file is available. Runs on the node timeline (port + CPU
        # mutually exclusive, the paper's model) or on the dedicated CPU
        # timeline in overlap mode.
        read = sum(
            self.platform.local_read_time(node, self.state.size_of(f))
            for f in task.files
        )
        exec_dur = read + self.platform.task_compute_time(node, task.compute_time)
        exec_tl = (
            self.cpu_tl[node] if self.cpu_tl is not None else self.node_tl[node]
        )
        dest_ov = self._overlay(overlays, exec_tl)
        exec_start = dest_ov.earliest_slot(
            exec_dur, max(transfers_done, self.clock)
        )
        dest_ov.reserve(exec_start, exec_dur, tag=f"exec:{task.task_id}")
        return _Tentative(
            task=task,
            node=node,
            overlays=overlays,
            transfers=transfers,
            transfers_done=transfers_done,
            exec_start=exec_start,
            ect=exec_start + exec_dur,
        )

    # -- committing ---------------------------------------------------------------------
    def _commit(
        self,
        tent: _Tentative,
        victim_order: Callable[[int, Iterable[str]], list[str]],
    ) -> TaskRecord:
        """Write a tentative schedule through to the real Gantt charts."""
        node = tent.node
        cache = self.state.caches[node]

        # Pin the already-present inputs first so on-demand eviction cannot
        # take files this task is about to use. Each such input is an access
        # served by the disk cache rather than a transfer.
        incoming_ids = {f for f, *_ in tent.transfers}
        for f in tent.task.files:
            if f not in incoming_ids:
                cache.pin(f)
                self.state.record_cache_hit(self.state.size_of(f))

        # Make room for the incoming files, evicting per policy.
        needed = sum(self.state.size_of(f) for f in incoming_ids)
        if needed > 0:
            cache.ensure_space(
                needed,
                victim_order=lambda cands: victim_order(node, cands),
                on_evict=lambda fid: self._on_evict(node, fid),
            )

        for ov in tent.overlays.values():
            ov.commit()
        for f, kind, src, start, duration in tent.transfers:
            size = self.state.size_of(f)
            self.state.place(node, f, now=start + duration)
            self._avail[(node, f)] = start + duration
            cache.pin(f)
            if kind == "remote":
                self.state.record_remote(size)
            else:
                self.state.record_replication(size)
            if self.trail is not None:
                self.trail.record_transfer(
                    f, size, kind, src, node, start, start + duration
                )
        for f in tent.task.files:
            cache.touch(f, tent.ect)
        if self.trail is not None:
            self.trail.record_exec(
                tent.task.task_id, node, tuple(tent.task.files),
                tent.exec_start, tent.ect,
            )
        return TaskRecord(
            task_id=tent.task.task_id,
            node=node,
            transfers_done=tent.transfers_done,
            exec_start=tent.exec_start,
            completion=tent.ect,
        )

    def _on_evict(self, node: int, file_id: str) -> None:
        # ensure_space has already dropped the cache entry; mirror the global
        # holder map, availability table and statistics.
        if self.trail is not None:
            self.trail.record_eviction(node, file_id, self.state.size_of(file_id))
        self.state.note_evicted(node, file_id)
        self._avail.pop((node, file_id), None)

    def _release(self, task: Task, node: int) -> None:
        cache = self.state.caches[node]
        for f in task.files:
            cache.unpin(f)

    # -- proactive pushes (Data Least Loaded) ------------------------------------------
    def _stage_push(self, file_id: str, dest: int,
                    victim_order: Callable[[int, Iterable[str]], list[str]]) -> None:
        """Proactively replicate ``file_id`` onto ``dest`` (DLL baseline)."""
        if self.state.has_file(dest, file_id):
            return
        size = self.state.size_of(file_id)
        cache = self.state.caches[dest]
        try:
            cache.ensure_space(
                size,
                victim_order=lambda cands: victim_order(dest, cands),
                on_evict=lambda fid: self._on_evict(dest, fid),
            )
        except CacheFullError:
            return  # skip the push rather than fail the run
        best = None
        overlays: dict[str, Overlay] = {}
        for kind, src in self._dynamic_sources(file_id, dest):
            res, bw, ready = self._transfer_resources(
                kind, src, dest, file_id, overlays
            )
            duration = size / bw
            start = earliest_common_slot(res, duration, max(self.clock, ready))
            if best is None or start + duration < best[0]:
                best = (start + duration, kind, src, start, duration, res)
        assert best is not None
        tct, kind, src, start, duration, res = best
        for ov in res:
            ov.reserve(start, duration, tag=f"push:{file_id}->{dest}")
        for ov in overlays.values():
            ov.commit()
        self.state.place(dest, file_id, now=tct)
        self._avail[(dest, file_id)] = tct
        if kind == "remote":
            self.state.record_remote(size)
        else:
            self.state.record_replication(size)
        if self.trail is not None:
            self.trail.record_transfer(
                file_id, size, kind, src, dest, start, tct, push=True
            )

    # -- main loop ---------------------------------------------------------------------
    def execute(
        self,
        tasks: Sequence[Task],
        mapping: Mapping[str, int],
        plan: StagingPlan | None = None,
        victim_order: Callable[[int, Iterable[str]], list[str]] | None = None,
    ) -> ExecutionResult:
        """Execute a sub-batch; returns timings and advances the clock.

        ``mapping`` sends every task id to a compute node. ``victim_order``
        ranks eviction candidates (most evictable first) for on-demand cache
        eviction; default is size-ascending.
        """
        if victim_order is None:

            def _size_ascending(node: int, cands: Iterable[str]) -> list[str]:
                return sorted(cands, key=lambda f: self.state.size_of(f))

            victim_order = _size_ascending

        start_time = self.clock
        for t in tasks:
            if t.task_id not in mapping:
                raise ValueError(f"task {t.task_id} missing from mapping")
            n = mapping[t.task_id]
            if not 0 <= n < self.platform.num_compute:
                raise ValueError(f"task {t.task_id} mapped to bad node {n}")

        if plan is not None:
            for file_id, dest in plan.pushes:
                self._stage_push(file_id, dest, victim_order)

        groups: dict[int, list[Task]] = {}
        for t in tasks:
            groups.setdefault(mapping[t.task_id], []).append(t)

        base_stats = replace(self.state.stats)

        records: list[TaskRecord] = []
        events: list[tuple[float, int, int, Task]] = []  # (ect, seq, node, task)
        seq = 0

        def candidates(node: int) -> list[Task]:
            pend = groups[node]
            if self.ordering == "fifo":
                return pend[:1]  # ablation mode: submission order, no ECT scan
            if self.candidate_limit is None or len(pend) <= self.candidate_limit:
                return pend
            # Cheap pre-filter: tasks needing the least missing volume first.
            def missing_mb(t: Task) -> float:
                return sum(
                    self.state.size_of(f)
                    for f in t.files
                    if not self.state.has_file(node, f)
                )
            return sorted(pend, key=missing_mb)[: self.candidate_limit]

        def best_of(node: int) -> _Tentative:
            tents = [self.evaluate(t, node, plan) for t in candidates(node)]
            return min(tents, key=lambda x: x.ect)

        def commit_next(node: int) -> None:
            nonlocal seq
            tent = best_of(node)
            groups[node].remove(tent.task)
            if not groups[node]:
                del groups[node]
            records.append(self._commit(tent, victim_order))
            heapq.heappush(events, (tent.ect, seq, node, tent.task))
            seq += 1

        # Initial commits: globally best first, then each remaining group's
        # best in ECT order (re-evaluated after every commit).
        uncommitted = set(groups)
        while uncommitted:
            best_node = None
            best_ect = float("inf")
            for node in uncommitted:
                tent = best_of(node)
                if tent.ect < best_ect:
                    best_node, best_ect = node, tent.ect
            assert best_node is not None
            commit_next(best_node)
            uncommitted.discard(best_node)
            uncommitted &= set(groups)

        # Event loop: when a task completes, schedule that group's next task.
        makespan = start_time
        while events:
            ect, _, node, task = heapq.heappop(events)
            makespan = max(makespan, ect)
            self._release(task, node)
            if node in groups:
                commit_next(node)

        self.clock = max(self.clock, makespan)
        delta = TransferStats(
            self.state.stats.remote_transfers - base_stats.remote_transfers,
            self.state.stats.remote_volume_mb - base_stats.remote_volume_mb,
            self.state.stats.replications - base_stats.replications,
            self.state.stats.replication_volume_mb
            - base_stats.replication_volume_mb,
            self.state.stats.evictions - base_stats.evictions,
            self.state.stats.evicted_volume_mb - base_stats.evicted_volume_mb,
            self.state.stats.cache_hits - base_stats.cache_hits,
            self.state.stats.cache_hit_volume_mb - base_stats.cache_hit_volume_mb,
        )
        return ExecutionResult(
            start_time=start_time,
            makespan=makespan,
            records=records,
            stats=delta,
        )
