"""Gantt chart export: inspect what the runtime actually scheduled.

Three views over a :class:`~repro.cluster.runtime.Runtime`'s timelines:

* :func:`trace_events` — flat, sorted event records (resource, start, end,
  tag kind) for programmatic analysis;
* :func:`render_ascii` — a terminal Gantt chart, one row per resource,
  for eyeballing contention and idle gaps;
* :func:`to_chrome_trace` — Chrome ``chrome://tracing`` / Perfetto JSON,
  one "thread" per resource, for real visual inspection.

Tags written by the runtime are ``xfer:<file>-><node>``,
``push:<file>-><node>`` and ``exec:<task>``; the kind is the prefix.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .gantt import Timeline
    from .runtime import Runtime

__all__ = ["TraceEvent", "trace_events", "render_ascii", "to_chrome_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One reservation on one resource."""

    resource: str
    start: float
    end: float
    tag: str

    @property
    def kind(self) -> str:
        """``xfer``, ``push``, ``exec`` or ``other``."""
        head, _, _ = self.tag.partition(":")
        return head if head in ("xfer", "push", "exec") else "other"

    @property
    def duration(self) -> float:
        return self.end - self.start


def _resources(runtime: Runtime) -> list[Timeline]:
    out = list(runtime.node_tl)
    if runtime.cpu_tl is not None:
        out.extend(runtime.cpu_tl)
    out.extend(runtime.storage_tl)
    if runtime.link_tl is not None:
        out.append(runtime.link_tl)
    return out


def trace_events(runtime: Runtime) -> list[TraceEvent]:
    """All reservations across all resources, sorted by start time."""
    events = [
        TraceEvent(tl.name, iv.start, iv.end, iv.tag)
        for tl in _resources(runtime)
        for iv in tl.intervals
    ]
    events.sort(key=lambda e: (e.start, e.resource))
    return events


def render_ascii(runtime: Runtime, width: int = 72) -> str:
    """Terminal Gantt chart: one row per resource.

    ``x`` marks transfers, ``#`` executions, ``p`` pushes; ``.`` idle.
    """
    resources = _resources(runtime)
    horizon = max((tl.horizon for tl in resources), default=0.0)
    if horizon <= 0:
        return "(empty gantt)"
    name_w = max(len(tl.name) for tl in resources)
    scale = width / horizon
    glyph = {"xfer": "x", "push": "p", "exec": "#", "other": "?"}

    lines = [
        f"{'':{name_w}}  0s{'':{max(0, width - 12)}}{horizon:8.1f}s",
    ]
    for tl in resources:
        row = ["."] * width
        for iv in tl.intervals:
            a = int(iv.start * scale)
            b = max(a + 1, int(iv.end * scale))
            ch = glyph[TraceEvent(tl.name, iv.start, iv.end, iv.tag).kind]
            for pos in range(a, min(b, width)):
                row[pos] = ch
        lines.append(f"{tl.name:{name_w}}  {''.join(row)}")
    lines.append(
        f"{'':{name_w}}  x=transfer  p=push  #=execute  .=idle "
        f"(1 col ~ {horizon / width:.2f}s)"
    )
    return "\n".join(lines)


def to_chrome_trace(runtime: Runtime) -> str:
    """Chrome-tracing JSON: load in chrome://tracing or ui.perfetto.dev.

    Resources become thread ids; times are exported in microseconds as the
    format requires (simulated seconds * 1e6).
    """
    resources = _resources(runtime)
    tid_of = {tl.name: i for i, tl in enumerate(resources)}
    events: list[dict] = []
    for tl in resources:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid_of[tl.name],
                "args": {"name": tl.name},
            }
        )
        for iv in tl.intervals:
            ev = TraceEvent(tl.name, iv.start, iv.end, iv.tag)
            events.append(
                {
                    "name": iv.tag or ev.kind,
                    "cat": ev.kind,
                    "ph": "X",
                    "pid": 0,
                    "tid": tid_of[tl.name],
                    "ts": iv.start * 1e6,
                    "dur": iv.duration * 1e6,
                }
            )
    return json.dumps({"traceEvents": events}, indent=None)
