"""Coupled storage + compute cluster descriptions and paper presets.

Units: sizes in MB, bandwidths in MB/s, times in seconds.

The paper's two testbeds (Section 7):

* **OSC/XIO** — compute cluster (2.4 GHz Xeons, 8 Gbps InfiniBand) coupled to
  the XIO storage nodes (FAStT600 arrays, ~210 MB/s disk bandwidth) over
  InfiniBand.
* **OSC/OSUMED** — same compute cluster, storage on 933 MHz PIII nodes with
  18–25 MB/s local disks, reachable only through a shared 100 Mbps link.

The shared OSUMED↔OSC link is modelled as an extra serialising resource that
every remote transfer must reserve, in addition to the storage-node port.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..analysis.dims import MB, MBps, Count, Dimensionless, Seconds, SecondsPerMB

__all__ = [
    "ComputeNode",
    "StorageNode",
    "Platform",
    "osc_xio",
    "osc_osumed",
    "MBPS_100MBIT",
    "MBPS_8GBIT",
]

MBPS_100MBIT: MBps = 12.5  # 100 Mbps Ethernet in MB/s
MBPS_8GBIT: MBps = 1000.0  # 8 Gbps InfiniBand in MB/s


@dataclass(frozen=True)
class ComputeNode:
    """A compute node: local disk cache plus CPU.

    ``disk_space_mb`` of ``inf`` models the paper's *unlimited disk cache*
    case. ``local_disk_bw`` is the bandwidth for reading staged files before
    processing (the ``1/BW_l`` term of Eq. 26). ``speed`` is the relative
    CPU speed (1.0 = reference; a task's compute time is divided by it) —
    the paper's clusters are homogeneous, so this is an extension knob.
    """

    node_id: int
    disk_space_mb: MB = math.inf
    local_disk_bw: MBps = 200.0
    speed: Dimensionless = 1.0

    def __post_init__(self) -> None:
        if self.disk_space_mb <= 0:
            raise ValueError("disk_space_mb must be positive")
        if self.local_disk_bw <= 0:
            raise ValueError("local_disk_bw must be positive")
        if self.speed <= 0:
            raise ValueError("speed must be positive")


@dataclass(frozen=True)
class StorageNode:
    """A storage node with a single serialised port of ``disk_bw`` MB/s."""

    node_id: int
    disk_bw: MBps = 210.0

    def __post_init__(self) -> None:
        if self.disk_bw <= 0:
            raise ValueError("disk_bw must be positive")


@dataclass(frozen=True)
class Platform:
    """A coupled storage/compute cluster configuration.

    Attributes
    ----------
    storage_network_bw:
        Per-link bandwidth between a storage node and a compute node; a
        remote transfer runs at ``min(storage.disk_bw, storage_network_bw)``
        (and additionally reserves ``shared_link_bw`` when set).
    compute_network_bw:
        Node-to-node bandwidth inside the compute cluster (replications).
    shared_link_bw:
        Optional bandwidth of a single shared link between the clusters that
        serialises *all* remote transfers (the OSUMED configuration).
    compute_cost_per_mb:
        Task CPU seconds per MB of input (paper: 0.001 s/MB).
    """

    compute_nodes: tuple[ComputeNode, ...]
    storage_nodes: tuple[StorageNode, ...]
    storage_network_bw: MBps = MBPS_8GBIT
    compute_network_bw: MBps = MBPS_8GBIT
    shared_link_bw: MBps | None = None
    compute_cost_per_mb: SecondsPerMB = 0.001
    name: str = "custom"

    def __post_init__(self) -> None:
        if not self.compute_nodes:
            raise ValueError("at least one compute node required")
        if not self.storage_nodes:
            raise ValueError("at least one storage node required")
        if self.storage_network_bw <= 0 or self.compute_network_bw <= 0:
            raise ValueError("bandwidths must be positive")
        if self.shared_link_bw is not None and self.shared_link_bw <= 0:
            raise ValueError("shared_link_bw must be positive when set")
        ids = [n.node_id for n in self.compute_nodes]
        if ids != list(range(len(ids))):
            raise ValueError("compute node ids must be 0..C-1 in order")
        sids = [n.node_id for n in self.storage_nodes]
        if sids != list(range(len(sids))):
            raise ValueError("storage node ids must be 0..S-1 in order")

    # -- derived quantities ----------------------------------------------------
    @property
    def num_compute(self) -> Count:
        return len(self.compute_nodes)

    @property
    def num_storage(self) -> Count:
        return len(self.storage_nodes)

    @property
    def aggregate_disk_space(self) -> MB:
        """Total compute-cluster disk cache space (the BINW bound ``D``)."""
        return sum(n.disk_space_mb for n in self.compute_nodes)

    def remote_bandwidth(self, storage_id: int) -> MBps:
        """Effective bandwidth of a remote transfer from ``storage_id``."""
        bw = min(self.storage_nodes[storage_id].disk_bw, self.storage_network_bw)
        if self.shared_link_bw is not None:
            bw = min(bw, self.shared_link_bw)
        return bw

    @property
    def min_remote_bandwidth(self) -> MBps:
        """``BW_s`` of Eq. 25: the minimum storage-to-compute bandwidth."""
        return min(self.remote_bandwidth(s.node_id) for s in self.storage_nodes)

    @property
    def replication_bandwidth(self) -> MBps:
        """``BW_c`` of Eq. 25: compute-node-to-compute-node bandwidth."""
        return self.compute_network_bw

    def remote_transfer_time(self, storage_id: int, size_mb: MB) -> Seconds:
        return size_mb / self.remote_bandwidth(storage_id)

    def replication_time(self, size_mb: MB) -> Seconds:
        return size_mb / self.compute_network_bw

    def local_read_time(self, node_id: int, size_mb: MB) -> Seconds:
        return size_mb / self.compute_nodes[node_id].local_disk_bw

    def compute_time(self, size_mb: MB) -> Seconds:
        """Reference-speed CPU time for ``size_mb`` of input."""
        return size_mb * self.compute_cost_per_mb

    def task_compute_time(self, node_id: int, base_compute_time: Seconds) -> Seconds:
        """A task's CPU time on ``node_id`` given its reference-speed cost."""
        return base_compute_time / self.compute_nodes[node_id].speed

    @property
    def is_homogeneous(self) -> bool:
        speeds = {n.speed for n in self.compute_nodes}
        return len(speeds) == 1


def _compute_nodes(count: int, disk_space_mb: MB) -> tuple[ComputeNode, ...]:
    return tuple(ComputeNode(i, disk_space_mb=disk_space_mb) for i in range(count))


def osc_xio(
    num_compute: int = 4,
    num_storage: int = 4,
    disk_space_mb: MB = math.inf,
) -> Platform:
    """The OSC compute cluster coupled to the XIO storage pool.

    210 MB/s storage disks behind InfiniBand; remote transfers are limited by
    the storage disks, replication runs at full 8 Gbps.
    """
    return Platform(
        compute_nodes=_compute_nodes(num_compute, disk_space_mb),
        storage_nodes=tuple(StorageNode(i, disk_bw=210.0) for i in range(num_storage)),
        storage_network_bw=MBPS_8GBIT,
        compute_network_bw=MBPS_8GBIT,
        shared_link_bw=None,
        name="osc-xio",
    )


def osc_osumed(
    num_compute: int = 4,
    num_storage: int = 4,
    disk_space_mb: MB = math.inf,
) -> Platform:
    """The OSC compute cluster using the OSUMED cluster as storage.

    Storage disks deliver 18–25 MB/s (assigned deterministically across
    nodes) and every remote transfer crosses a single shared 100 Mbps link,
    so remote I/O is scarce and replication inside the compute cluster is
    very profitable.
    """
    disk_bws = [18.0 + 7.0 * (i % num_storage) / max(1, num_storage - 1) for i in range(num_storage)]
    if num_storage == 1:
        disk_bws = [21.5]
    return Platform(
        compute_nodes=_compute_nodes(num_compute, disk_space_mb),
        storage_nodes=tuple(
            StorageNode(i, disk_bw=disk_bws[i]) for i in range(num_storage)
        ),
        storage_network_bw=MBPS_100MBIT,
        compute_network_bw=MBPS_8GBIT,
        shared_link_bw=MBPS_100MBIT,
        name="osc-osumed",
    )
