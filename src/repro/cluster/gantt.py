"""Gantt-chart resource timelines with earliest-slot queries.

Section 6 of the paper maintains a Gantt chart per storage and compute node
and reserves time slots on the source and destination of every transfer.
:class:`Timeline` stores disjoint busy intervals in sorted order and answers
``earliest_slot`` queries in O(log n + k); :class:`Overlay` adds *virtual*
reservations on top of a timeline so task completion times can be evaluated
tentatively (paper: files are "tentatively scheduled") without mutating the
real chart; :func:`earliest_common_slot` finds the first instant a set of
resources is simultaneously free (single-port model: a transfer occupies both
its endpoints, plus the shared inter-cluster link when present).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from ..analysis.dims import Seconds

__all__ = ["Interval", "Timeline", "Overlay", "earliest_common_slot"]

_EPS: Seconds = 1e-9


@dataclass(frozen=True, order=True)
class Interval:
    """A closed-open busy interval ``[start, end)`` with a debug tag."""

    start: Seconds
    end: Seconds
    tag: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval end {self.end} before start {self.start}")

    @property
    def duration(self) -> Seconds:
        return self.end - self.start


#: Tail length beyond which ``earliest_slot`` switches from the Python
#: scan to the vectorised gap search (below it, NumPy call overhead wins).
_SCAN_VECTOR_MIN = 48


class Timeline:
    """Busy intervals of one resource, kept sorted and non-overlapping.

    Starts and ends are mirrored in parallel float lists (for bisection
    and the Python-level scan) and in NumPy arrays grown by doubling (for
    the vectorised long-tail scan in :meth:`earliest_slot`); both are
    updated in place on :meth:`reserve`. All three views hold the exact
    same floats, so query results are independent of which path runs.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._intervals: list[Interval] = []
        self._starts: list[float] = []
        self._ends: list[float] = []
        self._starts_a = np.empty(64)
        self._ends_a = np.empty(64)

    def __len__(self) -> int:
        return len(self._intervals)

    @property
    def intervals(self) -> tuple[Interval, ...]:
        return tuple(self._intervals)

    @property
    def horizon(self) -> Seconds:
        """End of the last reservation (0 when empty)."""
        return self._intervals[-1].end if self._intervals else 0.0

    def busy_time(self) -> Seconds:
        return sum(iv.duration for iv in self._intervals)

    def is_free(self, start: Seconds, end: Seconds) -> bool:
        """True when ``[start, end)`` does not overlap any reservation."""
        if end - start <= _EPS:
            return True
        i = bisect_right(self._starts, start + _EPS)
        if i > 0 and self._ends[i - 1] > start + _EPS:
            return False
        if i < len(self._starts) and self._starts[i] < end - _EPS:
            return False
        return True

    def next_free(self, t: Seconds) -> Seconds:
        """Earliest instant >= t that is not inside a reservation."""
        i = bisect_right(self._starts, t + _EPS)
        if i > 0 and self._ends[i - 1] > t + _EPS:
            return self._ends[i - 1]
        return t

    def earliest_slot(self, duration: Seconds, not_before: Seconds = 0.0) -> Seconds:
        """Earliest start >= not_before of a free gap of ``duration``."""
        if duration <= _EPS:
            return self.next_free(not_before)
        t = max(0.0, not_before)
        starts = self._starts
        n = len(starts)
        i = bisect_right(starts, t + _EPS)
        ends = self._ends
        if i > 0 and ends[i - 1] > t + _EPS:
            t = ends[i - 1]
        if i == n:
            return t
        if t + duration <= starts[i] + _EPS:
            return t
        if n - i > _SCAN_VECTOR_MIN:
            # Vectorised tail scan. The candidate start before interval
            # j is the running max of ends up to j-1 (identical to the
            # scalar loop's ``t = max(t, nxt.end)`` bumps); the first
            # fitting gap wins, else the schedule's tail.
            racc = np.maximum.accumulate(self._ends_a[i:n])
            if t > ends[i]:
                racc = np.maximum(racc, t)
            fits = racc[:-1] + duration <= self._starts_a[i + 1 : n] + _EPS
            j = int(np.argmax(fits))
            if fits[j]:
                return float(racc[j])
            return float(racc[-1])
        while True:
            e = ends[i]
            if e > t:
                t = e
            i += 1
            if i == n:
                return t
            if t + duration <= starts[i] + _EPS:
                return t

    def reserve(self, start: Seconds, duration: Seconds, tag: str = "") -> Interval:
        """Reserve ``[start, start+duration)``; the slot must be free."""
        iv = Interval(start, start + duration, tag)
        if not self.is_free(iv.start, iv.end):
            raise ValueError(
                f"timeline {self.name!r}: slot [{start}, {start + duration}) is busy"
            )
        idx = bisect_right(self._starts, iv.start)
        self._intervals.insert(idx, iv)
        self._starts.insert(idx, iv.start)
        self._ends.insert(idx, iv.end)
        n = len(self._starts) - 1  # count before this insert
        sa, ea = self._starts_a, self._ends_a
        if n == len(sa):
            grown = np.empty(2 * n)
            grown[:n] = sa
            self._starts_a = sa = grown
            grown = np.empty(2 * n)
            grown[:n] = ea
            self._ends_a = ea = grown
        if idx < n:
            sa[idx + 1 : n + 1] = sa[idx:n]
            ea[idx + 1 : n + 1] = ea[idx:n]
        sa[idx] = iv.start
        ea[idx] = iv.end
        return iv

    def __repr__(self) -> str:
        return f"Timeline({self.name!r}, {len(self)} reservations)"


class Overlay:
    """A timeline view with extra virtual reservations (copy-on-write).

    Used when evaluating a task's earliest completion time: the transfers of
    the candidate task are placed on overlays so they constrain each other
    without touching the real Gantt chart. ``commit`` replays the virtual
    reservations onto the base timeline.
    """

    def __init__(self, base: Timeline) -> None:
        self.base = base
        self.virtual: list[Interval] = []

    def is_free(self, start: Seconds, end: Seconds) -> bool:
        if not self.base.is_free(start, end):
            return False
        return all(
            iv.end <= start + _EPS or iv.start >= end - _EPS for iv in self.virtual
        )

    def earliest_slot(self, duration: Seconds, not_before: Seconds = 0.0) -> Seconds:
        virtual = self.virtual
        if not virtual:
            return self.base.earliest_slot(duration, max(0.0, not_before))
        t = max(0.0, not_before)
        base_slot = self.base.earliest_slot
        # Alternate between the base timeline and virtual intervals until
        # a common gap is found; terminates because t only increases.
        for _ in range(10 * (len(virtual) + len(self.base) + 2)):
            t2 = base_slot(duration, t)
            bumped = False
            for iv in virtual:
                if iv.start < t2 + duration - _EPS and iv.end > t2 + _EPS:
                    t2 = max(t2, iv.end)
                    bumped = True
            if not bumped:
                return t2
            t = t2
        raise RuntimeError("earliest_slot failed to converge")  # pragma: no cover

    def reserve(self, start: Seconds, duration: Seconds, tag: str = "") -> Interval:
        iv = Interval(start, start + duration, tag)
        if not self.is_free(iv.start, iv.end):
            raise ValueError(f"overlay of {self.base.name!r}: slot busy")
        self.virtual.append(iv)
        return iv

    def commit(self) -> None:
        """Write all virtual reservations through to the base timeline."""
        for iv in self.virtual:
            self.base.reserve(iv.start, iv.duration, iv.tag)
        self.virtual.clear()


def earliest_common_slot(
    resources: Sequence[Timeline | Overlay],
    duration: Seconds,
    not_before: Seconds = 0.0,
) -> Seconds:
    """Earliest start where *all* resources are free for ``duration``.

    Fixpoint iteration over per-resource ``earliest_slot``: each round pushes
    the candidate start to the latest per-resource feasible start; stable
    point = common slot. Terminates because the candidate is non-decreasing
    and each timeline has finitely many reservations.
    """
    if not resources:
        return max(0.0, not_before)
    t = max(0.0, not_before)
    for _ in range(100_000):
        t_new = t
        for res in resources:
            t_new = max(t_new, res.earliest_slot(duration, t_new))
        if t_new <= t + _EPS:
            return t_new
        t = t_new
    raise RuntimeError("earliest_common_slot failed to converge")  # pragma: no cover
