"""Setuptools entry point; all metadata lives in setup.cfg.

Kept as an explicit file (rather than pyproject.toml) so editable installs
work in fully offline environments — see the comment in setup.cfg.
"""

from setuptools import setup

setup()
